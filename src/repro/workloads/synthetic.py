"""Generic synthetic databases and queries for scaling studies.

The benchmark harness needs knobs the domain workloads do not expose directly:
the exact number of tuples, the number of answer tuples of the selection
query, the size of query bodies.  The generators here provide those knobs with
deterministic seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.compatibility import EmptyConstraint, PredicateConstraint
from repro.core.functions import AttributeSumCost, AttributeSumRating
from repro.core.model import (
    ConstantBound,
    PolynomialBound,
    RecommendationProblem,
    SizeBound,
)
from repro.core.packages import Package
from repro.queries.ast import Comparison, ComparisonOp, RelationAtom, Var
from repro.queries.cq import ConjunctiveQuery
from repro.queries.sp import SPQuery, identity_query
from repro.relational.database import Database, Relation
from repro.relational.schema import RelationSchema

ITEMS = "items"
ITEM_ATTRIBUTES = ("iid", "category", "price", "quality")
CATEGORIES = ("a", "b", "c", "d")


def item_schema() -> RelationSchema:
    """Schema of the generic ``items`` relation."""
    return RelationSchema(ITEMS, ITEM_ATTRIBUTES)


def random_item_database(num_items: int, seed: Optional[int] = None) -> Database:
    """``num_items`` random items with integer prices and qualities."""
    rng = random.Random(seed)
    relation = Relation(item_schema())
    for index in range(num_items):
        relation.add(
            (
                index,
                rng.choice(CATEGORIES),
                rng.randrange(1, 50),
                rng.randrange(1, 20),
            )
        )
    return Database([relation])


def item_selection_query(max_price: Optional[int] = None) -> SPQuery:
    """An SP selection over the generic items (optionally price-filtered)."""
    variables = [Var(a) for a in ITEM_ATTRIBUTES]
    comparisons = (
        [Comparison(ComparisonOp.LE, Var("price"), max_price)] if max_price is not None else []
    )
    return SPQuery(ITEMS, variables, variables, comparisons, name="item_selection")


def no_duplicate_category_constraint() -> PredicateConstraint:
    """At most one item per category (an anti-monotone PTIME constraint)."""

    def compatible(package: Package, database: Database) -> bool:
        categories = package.column("category")
        return len(categories) == len(set(categories))

    # ``relations=()``: the predicate only inspects the package, so cached
    # verdicts survive any database delta (the oracle's retention path).
    return PredicateConstraint(
        compatible, "at most one item per category", relations=()
    )


@dataclass
class SyntheticProblem:
    """A synthetic recommendation problem plus the knobs that produced it."""

    problem: RecommendationProblem
    num_items: int
    seed: Optional[int]


def synthetic_package_problem(
    num_items: int,
    budget: float = 60.0,
    k: int = 2,
    size_bound: Optional[SizeBound] = None,
    with_constraint: bool = True,
    seed: Optional[int] = None,
) -> SyntheticProblem:
    """A knapsack-flavoured package problem over random items.

    cost = total price, val = total quality, optional "one per category"
    compatibility constraint.  With the default polynomial size bound this sits
    in the hard data-complexity regime; pass ``ConstantBound(b)`` to move to
    the Corollary 6.1 regime.
    """
    database = random_item_database(num_items, seed=seed)
    problem = RecommendationProblem(
        database=database,
        query=identity_query(ITEMS, ITEM_ATTRIBUTES, name="all_items"),
        cost=AttributeSumCost("price"),
        val=AttributeSumRating("quality"),
        budget=budget,
        k=k,
        compatibility=no_duplicate_category_constraint() if with_constraint else EmptyConstraint(),
        size_bound=size_bound or PolynomialBound(1.0, 1),
        name=f"synthetic packages over {num_items} items",
        monotone_cost=True,
        antimonotone_compatibility=True,
        # Qualities are drawn from [1, 20), so the total-quality rating is
        # genuinely monotone: the top-k search may branch-and-bound.
        monotone_val=True,
    )
    return SyntheticProblem(problem=problem, num_items=num_items, seed=seed)


# ---------------------------------------------------------------------------
# Random graph databases + chain queries (combined-complexity scaling)
# ---------------------------------------------------------------------------
def random_graph_database(
    num_nodes: int, num_edges: int, seed: Optional[int] = None, relation: str = "edge"
) -> Database:
    """A random directed graph as a binary ``edge`` relation."""
    rng = random.Random(seed)
    edges = Relation(RelationSchema(relation, ["src", "dst"]))
    while len(edges) < min(num_edges, num_nodes * (num_nodes - 1)):
        src, dst = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if src != dst:
            edges.add((src, dst))
    return Database([edges])


def path_query(length: int, relation: str = "edge") -> ConjunctiveQuery:
    """``Q(x0, xk) :- edge(x0,x1), ..., edge(x(k-1),xk)`` — grows with ``length``."""
    variables = [Var(f"x{i}") for i in range(length + 1)]
    atoms = [RelationAtom(relation, [variables[i], variables[i + 1]]) for i in range(length)]
    return ConjunctiveQuery([variables[0], variables[length]], atoms, name=f"path_{length}")


def cycle_query(length: int, relation: str = "edge") -> ConjunctiveQuery:
    """``Q(x0, ..., x(k-1)) :- edge(x0,x1), ..., edge(x(k-1),x0)`` — cyclic.

    The canonical worst-case-optimal workload: no binary join order over a
    ``length``-cycle avoids a large intermediate, while the leapfrog multiway
    step is bounded by the AGM fractional-cover size (``|E|^{k/2}``).
    """
    if length < 3:
        raise ValueError(f"a cycle query needs length >= 3, got {length}")
    variables = [Var(f"x{i}") for i in range(length)]
    atoms = [
        RelationAtom(relation, [variables[i], variables[(i + 1) % length]])
        for i in range(length)
    ]
    return ConjunctiveQuery(list(variables), atoms, name=f"cycle_{length}")


def triangle_query(relation: str = "edge") -> ConjunctiveQuery:
    """``Q(x0, x1, x2) :- edge(x0,x1), edge(x1,x2), edge(x2,x0)``."""
    return cycle_query(3, relation)


# ---------------------------------------------------------------------------
# Streaming update workloads (the PR 3 scenario class)
# ---------------------------------------------------------------------------
@dataclass
class StreamingWorkload:
    """A database, a join query over it, and a stream of update batches.

    The scenario the delta-maintenance subsystem opens: a live ``Q(D)`` must
    be kept current while single-tuple insertions and deletions arrive.  The
    stream is deterministic in the seed and mixes inserts of fresh edges with
    deletes of randomly chosen *existing* edges (sampled against the evolving
    edge set, so deletes are effective rather than no-ops).
    """

    database: Database
    query: ConjunctiveQuery
    stream: Tuple[Tuple[Tuple[str, str, Tuple], ...], ...]
    num_nodes: int
    seed: Optional[int]


def streaming_update_workload(
    num_nodes: int,
    num_edges: int,
    num_updates: int,
    batch_size: int = 1,
    path_length: int = 2,
    seed: Optional[int] = None,
) -> StreamingWorkload:
    """A random graph, a ``path_length``-join query, and an update stream.

    The stream is generated against a scratch copy of the edge set so that the
    returned :class:`StreamingWorkload` leaves ``database`` pristine — both
    the incremental and the from-scratch consumer replay the identical
    batches.
    """
    rng = random.Random(seed)
    database = random_graph_database(num_nodes, num_edges, seed=seed)
    live = set(database.relation("edge").rows())
    batches: List[Tuple[Tuple[str, str, Tuple], ...]] = []
    for _ in range(num_updates):
        batch = []
        for _ in range(batch_size):
            if live and rng.random() < 0.5:
                row = rng.choice(sorted(live))
                live.discard(row)
                batch.append(("delete", "edge", row))
            else:
                src, dst = rng.randrange(num_nodes), rng.randrange(num_nodes)
                while src == dst:
                    src, dst = rng.randrange(num_nodes), rng.randrange(num_nodes)
                live.add((src, dst))
                batch.append(("insert", "edge", (src, dst)))
        batches.append(tuple(batch))
    return StreamingWorkload(
        database=database,
        query=path_query(path_length),
        stream=tuple(batches),
        num_nodes=num_nodes,
        seed=seed,
    )
