"""The team-formation workload (the [23] motivation of the paper).

Relations:

* ``expert(name, skill, fee, reputation)`` — one row per expert per skill;
* ``worked_with(name1, name2)`` — a prior-collaboration graph.

A *team* is a package of expert rows.  Two compatibility constraints are
provided: "no skill is covered by more than one chosen expert" (a CQ over
``RQ`` alone) and "every pair of chosen experts has worked together" (an FO
constraint over ``RQ`` and the collaboration graph).  The rating rewards
reputation, the cost is the total fee, and the required-skills check is folded
into the rating so that the objective stays a single PTIME function as in the
paper's model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.compatibility import QueryConstraint
from repro.core.functions import AttributeSumCost, CallableRating
from repro.core.model import PolynomialBound, RecommendationProblem
from repro.core.packages import Package
from repro.queries.ast import And, Comparison, ComparisonOp, Exists, ForAll, Not, Or, RelationAtom, Var
from repro.queries.cq import ConjunctiveQuery
from repro.queries.fo import FirstOrderQuery
from repro.queries.sp import identity_query
from repro.relational.database import Database, Relation
from repro.relational.schema import RelationSchema

EXPERT = "expert"
WORKED_WITH = "worked_with"

EXPERT_ATTRIBUTES = ("name", "skill", "fee", "reputation")
SKILLS = ("backend", "frontend", "data", "ops", "design")


def expert_schema() -> RelationSchema:
    """Schema of the ``expert`` relation."""
    return RelationSchema(EXPERT, EXPERT_ATTRIBUTES)


def worked_with_schema() -> RelationSchema:
    """Schema of the collaboration graph."""
    return RelationSchema(WORKED_WITH, ["name1", "name2"])


def small_team_database() -> Database:
    """A hand-written pool of experts with a dense collaboration core."""
    experts = Relation(
        expert_schema(),
        [
            ("ada", "backend", 60, 9),
            ("ada", "data", 60, 8),
            ("grace", "backend", 50, 8),
            ("alan", "data", 40, 7),
            ("edsger", "frontend", 45, 9),
            ("barbara", "frontend", 35, 7),
            ("donald", "ops", 55, 9),
            ("leslie", "ops", 30, 6),
            ("margaret", "design", 40, 8),
        ],
    )
    pairs = [
        ("ada", "grace"),
        ("ada", "edsger"),
        ("ada", "donald"),
        ("grace", "edsger"),
        ("grace", "alan"),
        ("edsger", "donald"),
        ("barbara", "leslie"),
        ("margaret", "ada"),
        ("margaret", "edsger"),
    ]
    symmetric = pairs + [(b, a) for a, b in pairs] + [(a, a) for a in {p for pair in pairs for p in pair}]
    collaboration = Relation(worked_with_schema(), symmetric)
    return Database([experts, collaboration])


# ---------------------------------------------------------------------------
# Compatibility constraints
# ---------------------------------------------------------------------------
def no_duplicate_skill_constraint() -> QueryConstraint:
    """CQ constraint: two distinct chosen experts must not share a skill."""
    n1, n2, skill = Var("n1"), Var("n2"), Var("skill")
    f1, r1, f2, r2 = Var("f1"), Var("r1"), Var("f2"), Var("r2")
    query = ConjunctiveQuery(
        [],
        [
            RelationAtom("RQ", [n1, skill, f1, r1]),
            RelationAtom("RQ", [n2, skill, f2, r2]),
        ],
        [Comparison(ComparisonOp.NE, n1, n2)],
        name="duplicate_skill",
    )
    return QueryConstraint(query, answer_relation="RQ")


def prior_collaboration_constraint() -> QueryConstraint:
    """FO constraint: some pair of chosen experts never worked together (violation)."""
    n1, n2 = Var("n1"), Var("n2")
    s1, f1, r1 = Var("s1"), Var("f1"), Var("r1")
    s2, f2, r2 = Var("s2"), Var("f2"), Var("r2")
    violation = Exists(
        (n1, n2, s1, f1, r1, s2, f2, r2),
        And(
            RelationAtom("RQ", [n1, s1, f1, r1]),
            RelationAtom("RQ", [n2, s2, f2, r2]),
            Not(RelationAtom(WORKED_WITH, [n1, n2])),
        ),
    )
    query = FirstOrderQuery([], violation, name="never_collaborated")
    return QueryConstraint(query, answer_relation="RQ")


def coverage_rating(required_skills: Sequence[str], bonus: float = 100.0) -> CallableRating:
    """Rating = total reputation, plus ``bonus`` when every required skill is covered."""
    required = tuple(required_skills)

    def rating(package: Package) -> float:
        if package.is_empty():
            return 0.0
        reputation = float(sum(item[3] for item in package.items))
        covered = {item[1] for item in package.items}
        if all(skill in covered for skill in required):
            reputation += bonus
        return reputation

    return CallableRating(rating, description=f"reputation + {bonus} if {required} covered")


@dataclass
class TeamScenario:
    """A ready-to-solve team-formation problem."""

    database: Database
    problem: RecommendationProblem
    required_skills: Tuple[str, ...]


def team_formation_scenario(
    required_skills: Sequence[str] = ("backend", "frontend", "ops"),
    fee_budget: int = 160,
    k: int = 2,
    require_collaboration: bool = True,
    database: Optional[Database] = None,
) -> TeamScenario:
    """Top-k compatible teams covering the required skills within a fee budget."""
    database = database or small_team_database()
    constraint = (
        prior_collaboration_constraint() if require_collaboration else no_duplicate_skill_constraint()
    )
    problem = RecommendationProblem(
        database=database,
        query=identity_query(EXPERT, EXPERT_ATTRIBUTES, name="expert_pool"),
        cost=AttributeSumCost("fee"),
        val=coverage_rating(required_skills),
        budget=float(fee_budget),
        k=k,
        compatibility=constraint,
        size_bound=PolynomialBound(1.0, 1),
        name="team formation",
        monotone_cost=True,
        antimonotone_compatibility=True,
    )
    return TeamScenario(
        database=database, problem=problem, required_skills=tuple(required_skills)
    )


def random_team_database(
    num_experts: int,
    collaboration_probability: float = 0.4,
    seed: Optional[int] = None,
) -> Database:
    """A random expert pool with a seeded collaboration graph."""
    rng = random.Random(seed)
    experts = Relation(expert_schema())
    names = [f"expert{i:03d}" for i in range(num_experts)]
    for name in names:
        for skill in rng.sample(SKILLS, rng.randint(1, 2)):
            experts.add((name, skill, rng.randrange(20, 80), rng.randrange(5, 10)))
    collaboration = Relation(worked_with_schema())
    for name in names:
        collaboration.add((name, name))
    for first in names:
        for second in names:
            if first < second and rng.random() < collaboration_probability:
                collaboration.add((first, second))
                collaboration.add((second, first))
    return Database([experts, collaboration])
