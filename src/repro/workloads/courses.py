"""The course-package workload (the [27, 28] motivation of the paper).

Relations:

* ``course(cid, title, area, credits, score)`` — the catalogue;
* ``prereq(cid, pre)`` — the prerequisite graph.

A course *package* is a term plan; the compatibility constraint requires the
plan to be prerequisite-closed ("for each course in N, its prerequisites are
also in N"), which the paper points out needs a query over both ``RQ`` and the
database — and needs FO (or Datalog, for transitive closure) rather than CQ
because it is a universal condition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.compatibility import PredicateConstraint, QueryConstraint
from repro.core.functions import AttributeSumCost, AttributeSumRating
from repro.core.model import PolynomialBound, RecommendationProblem
from repro.core.packages import Package
from repro.queries.ast import And, Comparison, ComparisonOp, Exists, ForAll, Not, Or, RelationAtom, Var
from repro.queries.cq import ConjunctiveQuery
from repro.queries.datalog import DatalogProgram, DatalogRule
from repro.queries.fo import FirstOrderQuery
from repro.queries.sp import SPQuery
from repro.relational.database import Database, Relation
from repro.relational.schema import RelationSchema

COURSE = "course"
PREREQ = "prereq"

COURSE_ATTRIBUTES = ("cid", "title", "area", "credits", "score")
AREAS = ("db", "systems", "theory", "ml", "pl")


def course_schema() -> RelationSchema:
    """Schema of the ``course`` relation."""
    return RelationSchema(COURSE, COURSE_ATTRIBUTES)


def prereq_schema() -> RelationSchema:
    """Schema of the ``prereq`` relation."""
    return RelationSchema(PREREQ, ["cid", "pre"])


def small_course_database() -> Database:
    """A hand-written catalogue with a two-level prerequisite chain."""
    courses = Relation(
        course_schema(),
        [
            ("db101", "Intro to Databases", "db", 10, 7),
            ("db201", "Query Processing", "db", 10, 8),
            ("db301", "Advanced Databases", "db", 20, 9),
            ("th101", "Discrete Mathematics", "theory", 10, 6),
            ("th201", "Complexity Theory", "theory", 20, 9),
            ("ml101", "Machine Learning", "ml", 20, 8),
            ("sys101", "Operating Systems", "systems", 10, 7),
            ("pl101", "Functional Programming", "pl", 10, 6),
        ],
    )
    prereqs = Relation(
        prereq_schema(),
        [
            ("db201", "db101"),
            ("db301", "db201"),
            ("th201", "th101"),
            ("ml101", "th101"),
        ],
    )
    return Database([courses, prereqs])


# ---------------------------------------------------------------------------
# Queries
# ---------------------------------------------------------------------------
def course_selection_query(min_score: int = 0) -> SPQuery:
    """An SP selection: all courses scoring at least ``min_score``."""
    variables = [Var(a) for a in COURSE_ATTRIBUTES]
    comparisons = [Comparison(ComparisonOp.GE, Var("score"), min_score)] if min_score else []
    return SPQuery(COURSE, variables, variables, comparisons, name="eligible_courses")


def prerequisite_closure_constraint() -> QueryConstraint:
    """The FO compatibility constraint "prerequisites are included".

    Violation query (CQ suffices to *detect* a violation): some course in the
    package has a prerequisite course that is not in the package.  Expressed in
    FO with negation over ``RQ``:

    ``Qc() = ∃ c, p: RQ(c, ...) ∧ prereq(c, p) ∧ ¬ ∃ ...: RQ(p, ...)``
    """
    cid, pre = Var("cid"), Var("pre")
    t1, a1, cr1, s1 = Var("t1"), Var("a1"), Var("cr1"), Var("s1")
    t2, a2, cr2, s2 = Var("t2"), Var("a2"), Var("cr2"), Var("s2")
    in_package = RelationAtom("RQ", [cid, t1, a1, cr1, s1])
    has_prereq = RelationAtom(PREREQ, [cid, pre])
    prereq_in_package = Exists(
        (t2, a2, cr2, s2), RelationAtom("RQ", [pre, t2, a2, cr2, s2])
    )
    violation = Exists(
        (cid, pre, t1, a1, cr1, s1), And(in_package, has_prereq, Not(prereq_in_package))
    )
    query = FirstOrderQuery([], violation, name="missing_prerequisite")
    return QueryConstraint(query, answer_relation="RQ")


def prerequisite_closure_predicate() -> PredicateConstraint:
    """The same constraint as a PTIME predicate (the Corollary 6.3 variant)."""

    def closed(package: Package, database: Database) -> bool:
        chosen = {item[0] for item in package.items}
        for cid, pre in database.relation(PREREQ):
            if cid in chosen and pre not in chosen:
                return False
        return True

    return PredicateConstraint(closed, "prerequisites of every chosen course are chosen")


def transitive_prerequisites_program() -> DatalogProgram:
    """The (recursive) Datalog query computing all transitive prerequisites."""
    cid, pre, mid = Var("c"), Var("p"), Var("m")
    rules = [
        DatalogRule(RelationAtom("requires", [cid, pre]), [RelationAtom(PREREQ, [cid, pre])]),
        DatalogRule(
            RelationAtom("requires", [cid, pre]),
            [RelationAtom("requires", [cid, mid]), RelationAtom(PREREQ, [mid, pre])],
        ),
    ]
    return DatalogProgram(rules, output="requires", name="transitive_prerequisites")


# ---------------------------------------------------------------------------
# The packaged scenario
# ---------------------------------------------------------------------------
@dataclass
class CourseScenario:
    """A ready-to-solve course-recommendation problem."""

    database: Database
    problem: RecommendationProblem


def course_plan_scenario(
    credit_budget: int = 40,
    min_score: int = 0,
    k: int = 2,
    use_fo_constraint: bool = True,
    database: Optional[Database] = None,
) -> CourseScenario:
    """Top-k prerequisite-closed course plans within a credit budget.

    ``use_fo_constraint`` switches between the FO compatibility query and the
    equivalent PTIME predicate — the pair the Corollary 6.3 ablation compares.
    """
    database = database or small_course_database()
    constraint = (
        prerequisite_closure_constraint() if use_fo_constraint else prerequisite_closure_predicate()
    )
    problem = RecommendationProblem(
        database=database,
        query=course_selection_query(min_score),
        cost=AttributeSumCost("credits"),
        val=AttributeSumRating("score"),
        budget=float(credit_budget),
        k=k,
        compatibility=constraint,
        size_bound=PolynomialBound(1.0, 1),
        name="course plans",
        monotone_cost=True,
        # Prerequisite closure is NOT anti-monotone (adding the missing
        # prerequisite can fix a violating package), so no pruning on Qc.
        antimonotone_compatibility=False,
    )
    return CourseScenario(database=database, problem=problem)


def random_course_database(
    num_courses: int,
    prereq_probability: float = 0.25,
    seed: Optional[int] = None,
) -> Database:
    """A random catalogue whose prerequisite graph is acyclic by construction."""
    rng = random.Random(seed)
    courses = Relation(course_schema())
    for index in range(num_courses):
        courses.add(
            (
                f"c{index:03d}",
                f"Course {index}",
                rng.choice(AREAS),
                rng.choice([10, 10, 20]),
                rng.randrange(5, 10),
            )
        )
    prereqs = Relation(prereq_schema())
    for index in range(1, num_courses):
        for earlier in range(index):
            if rng.random() < prereq_probability / max(1, index):
                prereqs.add((f"c{index:03d}", f"c{earlier:03d}"))
    return Database([courses, prereqs])
