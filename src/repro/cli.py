"""The ``repro`` command-line interface.

Four small commands expose the library's deliverables without writing code:

``python -m repro tables``
    Print the paper's Tables 8.1 and 8.2 (the machine-readable copies the
    library carries) plus the Section 9 findings.

``python -m repro demo``
    Solve the quickstart POI problem and print the four POI problems (FRP,
    RPP, MBP, CPP) on it — the fastest way to see the model in action.

``python -m repro experiments [--output PATH] [--full] [--only ID ...]``
    Run the experiment sweeps behind EXPERIMENTS.md and write the report.

``python -m repro example NAME``
    Run one of the bundled example scripts (quickstart, travel_planning,
    course_packages, team_formation, query_relaxation, adjustment,
    query_languages, complexity_tables) by importing and calling its ``main``.

``python -m repro explain QUERY``
    Compile a workload query against its synthetic database and print the
    cost-based :class:`~repro.queries.plan.JoinPlan` — atom order, probe
    kinds (hash / range / scan), comparison schedule, the semi-join verdict
    and, for cyclic queries (``triangle``, ``four_cycle``), the
    worst-case-optimal multiway step with its variable elimination order —
    plus the statistics the planner costed it with.

``python -m repro serve [--items N] [--rounds R] [--batch B] ...``
    Replay a mixed read/update trace through the snapshot-isolated serving
    layer (:mod:`repro.serving`) and print per-round throughput plus the
    p50/p99 request latency; ``--baseline`` also replays the identical
    trace through the global-lock reference server, checks the answer
    sequences match exactly, and reports the speedup; ``--wal PATH`` serves
    durably, write-ahead logging every commit under ``PATH``.

``python -m repro recover PATH``
    Rebuild the database a durable ``serve --wal PATH`` run (crashed or
    clean) left behind: load the checkpoint, replay the WAL tail, discard
    any torn trailing record, and print the recovered epoch and row counts.
"""

from __future__ import annotations

import argparse
import importlib
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro import __version__


#: Workload queries ``repro explain`` can compile and describe.
EXPLAIN_QUERIES = ("path2", "path3", "triangle", "four_cycle", "items", "items_under_30")


#: Example scripts shipped under ``examples/`` that ``repro example`` can run.
EXAMPLE_NAMES = (
    "quickstart",
    "travel_planning",
    "course_packages",
    "team_formation",
    "query_relaxation",
    "adjustment",
    "streaming_updates",
    "serving_trace",
    "crash_recovery",
    "group_recommendation",
    "query_languages",
    "complexity_tables",
)


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'On the Complexity of Package Recommendation Problems' "
            "(Deng, Fan, Geerts; PODS 2012)."
        ),
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    commands = parser.add_subparsers(dest="command")

    commands.add_parser("tables", help="print Tables 8.1 and 8.2 and the Section 9 findings")

    demo = commands.add_parser("demo", help="solve the quickstart POI problem end to end")
    demo.add_argument("--k", type=int, default=3, help="how many packages to recommend")
    demo.add_argument("--budget", type=float, default=8.0, help="the cost budget C (visiting hours)")

    experiments = commands.add_parser(
        "experiments", help="run the experiment sweeps and write EXPERIMENTS.md"
    )
    experiments.add_argument(
        "--output", default="EXPERIMENTS.md", help="where to write the report (default: EXPERIMENTS.md)"
    )
    experiments.add_argument(
        "--full", action="store_true", help="use the larger sweep sizes (slower)"
    )
    experiments.add_argument(
        "--only",
        nargs="*",
        default=None,
        metavar="EXP-ID",
        help="run only the named experiments (e.g. EXP-T8.1 EXP-S7)",
    )
    experiments.add_argument(
        "--stdout", action="store_true", help="print the report instead of writing the file"
    )

    example = commands.add_parser("example", help="run one of the bundled example scripts")
    example.add_argument("name", choices=EXAMPLE_NAMES, help="which example to run")

    explain = commands.add_parser(
        "explain", help="print the compiled join plan for a workload query"
    )
    explain.add_argument(
        "query", choices=EXPLAIN_QUERIES, help="which workload query to compile"
    )
    explain.add_argument(
        "--seed", type=int, default=7, help="seed for the synthetic database"
    )
    explain.add_argument(
        "--no-statistics",
        action="store_true",
        help="compile with the statistics-blind fallback order instead",
    )
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="also execute the plan and print actual rows and time per step "
        "next to the planner's estimates",
    )

    serve = commands.add_parser(
        "serve", help="replay a mixed read/update trace through the snapshot server"
    )
    serve.add_argument("--items", type=int, default=80, help="catalog size (random items)")
    serve.add_argument("--rounds", type=int, default=4, help="trace rounds (one commit each)")
    serve.add_argument("--batch", type=int, default=24, help="requests per round")
    serve.add_argument("--workers", type=int, default=8, help="reader thread-pool size")
    serve.add_argument("--seed", type=int, default=7, help="trace seed")
    serve.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline in milliseconds (expired requests return a "
        "typed timeout error instead of running forever)",
    )
    serve.add_argument(
        "--baseline",
        action="store_true",
        help="also replay through the global-lock reference server and report the speedup",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="serve with the metrics registry active and print the instrument "
        "summary (per-code errors, retries/sheds, counters) after the replay",
    )
    serve.add_argument(
        "--wal",
        metavar="PATH",
        default=None,
        help="serve durably: write-ahead log every commit under this "
        "directory (created if missing; must be fresh — serving refuses a "
        "directory already holding another run's history) and ack writes "
        "only after the fsync; recover later with `repro recover PATH`",
    )

    recover = commands.add_parser(
        "recover",
        help="rebuild the database a crashed durable server left behind",
    )
    recover.add_argument(
        "path", help="the durability directory a `serve --wal PATH` run wrote"
    )

    return parser


# ---------------------------------------------------------------------------
# Command implementations
# ---------------------------------------------------------------------------
def _command_tables() -> int:
    from repro.complexity import paper_findings, render_table_8_1, render_table_8_2

    print(render_table_8_1())
    print()
    print(render_table_8_2())
    print()
    print("Section 9 findings:")
    for finding in paper_findings():
        print(f"  - {finding}")
    return 0


def _command_demo(k: int, budget: float) -> int:
    from repro import Database, RecommendationProblem, compute_top_k
    from repro.core import (
        AttributeSumCost,
        AttributeSumRating,
        PolynomialBound,
        at_most_k_with_value,
        count_valid_packages,
        is_top_k_selection,
        maximum_bound,
    )
    from repro.queries import identity_query_for

    database = Database()
    poi = database.create_relation(
        "poi",
        ["name", "kind", "ticket", "time"],
        [
            ("met", "museum", 25, 3),
            ("moma", "museum", 25, 2),
            ("guggenheim", "museum", 22, 2),
            ("broadway", "theater", 120, 3),
            ("high_line", "park", 0, 2),
            ("central_park", "park", 0, 3),
        ],
    )
    problem = RecommendationProblem(
        database=database,
        query=identity_query_for(poi),
        cost=AttributeSumCost("time"),
        val=AttributeSumRating("ticket", sign=-1.0),
        budget=budget,
        k=k,
        compatibility=at_most_k_with_value("kind", "museum", 1),
        size_bound=PolynomialBound(1.0, 1),
        name="demo day plans",
        monotone_cost=True,
        antimonotone_compatibility=True,
    )
    print(problem.describe())
    print()

    result = compute_top_k(problem)
    if not result.found:
        print("FRP: no top-k selection exists")
        return 1
    print(f"FRP: top-{k} day plans (cheapest tickets within {budget} visiting hours):")
    for rank, package in enumerate(result.selection, start=1):
        names = ", ".join(item[0] for item in package.sorted_items())
        print(f"  {rank}. [{names}]  val = {problem.val(package):.0f}")
    print()
    rpp = is_top_k_selection(problem, result.selection)
    print(f"RPP: is that selection really top-{k}?  {rpp.is_top_k}")
    bound = maximum_bound(problem)
    print(f"MBP: the maximum rating bound admitting a top-{k} selection is {bound}")
    cpp = count_valid_packages(problem, bound if bound is not None else 0.0)
    print(f"CPP: {cpp.count} valid packages are rated at least that bound")
    return 0


def _command_experiments(
    output: str, full: bool, only: Optional[Sequence[str]], to_stdout: bool
) -> int:
    from repro.bench.experiments import render_markdown, run_all_experiments

    results = run_all_experiments(quick=not full, only=only)
    if not results:
        print("no experiments matched --only; known ids:", file=sys.stderr)
        from repro.bench.experiments import ALL_EXPERIMENTS

        for experiment_id, _ in ALL_EXPERIMENTS:
            print(f"  {experiment_id}", file=sys.stderr)
        return 2
    text = render_markdown(results, quick=not full)
    if to_stdout:
        print(text)
    else:
        Path(output).write_text(text, encoding="utf-8")
        print(f"wrote {output} ({len(results)} experiments)")
    disagreements = [result.experiment_id for result in results if not result.agreement]
    if disagreements:
        print(f"WARNING: measured shape disagrees with the paper for: {', '.join(disagreements)}")
        return 1
    return 0


def _command_example(name: str) -> int:
    examples_dir = Path(__file__).resolve().parent.parent.parent / "examples"
    script = examples_dir / f"{name}.py"
    if script.exists():
        # Run the example exactly as `python examples/<name>.py` would.
        namespace = {"__name__": "__main__", "__file__": str(script)}
        code = compile(script.read_text(encoding="utf-8"), str(script), "exec")
        exec(code, namespace)  # noqa: S102 - running our own bundled example
        return 0
    # Installed without the examples directory: fall back to an import attempt.
    try:
        module = importlib.import_module(f"examples.{name}")
    except ModuleNotFoundError:
        print(
            f"example {name!r} not found; examples are shipped in the source checkout under "
            "examples/",
            file=sys.stderr,
        )
        return 2
    module.main()
    return 0


def _command_explain(
    query_name: str, seed: int, no_statistics: bool, analyze: bool = False
) -> int:
    from repro.queries.plan import plan_conjunction
    from repro.workloads.synthetic import (
        cycle_query,
        item_selection_query,
        path_query,
        random_graph_database,
        random_item_database,
        triangle_query,
    )

    if query_name in ("path2", "path3"):
        length = int(query_name[-1])
        database = random_graph_database(60, 180, seed=seed)
        query = path_query(length)
    elif query_name in ("triangle", "four_cycle"):
        database = random_graph_database(60, 180, seed=seed)
        query = triangle_query() if query_name == "triangle" else cycle_query(4)
    else:
        database = random_item_database(200, seed=seed)
        max_price = 30 if query_name == "items_under_30" else None
        query = item_selection_query(max_price).to_cq()

    statistics = None
    if not no_statistics:
        statistics = {
            atom.relation: database.relation(atom.relation).statistics()
            for atom in query.atoms
        }
    plan = plan_conjunction(query.atoms, query.comparisons, statistics=statistics)

    print(f"query: {query}")
    for name in sorted({atom.relation for atom in query.atoms}):
        stats = database.relation(name).statistics()
        distinct = ", ".join(str(count) for count in stats.distinct_counts)
        print(f"relation {name}: {stats.cardinality} rows, distinct per position [{distinct}]")
    mode = "statistics-blind fallback order" if no_statistics else "cost-based order"
    print(f"plan ({mode}):")
    print(plan.describe())
    if analyze:
        from repro.observability.explain import explain_analyze

        analysis = explain_analyze(
            database,
            query.atoms,
            query.comparisons,
            use_statistics=False if no_statistics else None,
            plan=plan,
        )
        print()
        print("analyze (actual vs estimated):")
        print(analysis.render())
    return 0


def _command_serve(
    items: int,
    rounds: int,
    batch: int,
    workers: int,
    seed: int,
    baseline: bool,
    deadline_ms: Optional[float] = None,
    metrics: bool = False,
    wal: Optional[str] = None,
) -> int:
    import time
    from contextlib import nullcontext

    from repro.serving import (
        GlobalLockServer,
        ResilienceConfig,
        SnapshotServer,
        build_trace,
        latency_percentiles,
    )

    registry = None
    scope = nullcontext()
    if metrics:
        from repro.observability import MetricsRegistry, use_metrics

        registry = MetricsRegistry()
        scope = use_metrics(registry)

    resilience = (
        ResilienceConfig(deadline_s=deadline_ms / 1000.0)
        if deadline_ms is not None
        else None
    )
    durability = None
    if wal is not None:
        from repro.durability import DurabilityConfig

        durability = DurabilityConfig(wal)
    trace = build_trace(items, rounds, batch, seed=seed)
    try:
        server = SnapshotServer(
            trace.problem,
            max_workers=workers,
            resilience=resilience,
            durability=durability,
        )
    except Exception as error:
        from repro.durability import CorruptRecordError

        if durability is None or not isinstance(error, CorruptRecordError):
            raise
        # A pre-existing durability directory whose epoch does not match the
        # fresh trace database: serving over it would fork its history.
        print(f"refusing to serve: {error}", file=sys.stderr)
        print(
            f"recover it with `repro recover {durability.directory}` or "
            f"point --wal at a fresh directory",
            file=sys.stderr,
        )
        return 1
    print(trace.problem.describe())
    print(f"trace: {rounds} rounds x {batch} requests, one delta commit per round")
    if resilience is not None:
        print(f"resilience: per-request deadline {deadline_ms:g}ms")
    if durability is not None:
        print(f"durability: write-ahead log under {durability.directory}")

    snapshot_results = []
    with scope:
        start = time.perf_counter()
        for round_index, (delta, requests) in enumerate(trace.rounds):
            if delta:
                server.apply(list(delta))
            round_start = time.perf_counter()
            results = server.serve_batch(requests)
            round_seconds = time.perf_counter() - round_start
            snapshot_results.extend(results)
            unique = len(set(requests))
            print(
                f"  round {round_index}: epoch {server.epoch}, {len(requests)} requests "
                f"({unique} unique) in {round_seconds * 1000:.0f}ms"
            )
        snapshot_seconds = time.perf_counter() - start
    latency = latency_percentiles(snapshot_results)
    errors = sum(1 for result in snapshot_results if not result.ok)
    answered = len(snapshot_results) - errors
    print(
        f"snapshot server: {answered / snapshot_seconds:.0f} answered requests/s "
        f"({errors} typed errors), "
        f"p50 = {latency['p50'] * 1000:.1f}ms, p99 = {latency['p99'] * 1000:.1f}ms"
    )
    if registry is not None:
        breakdown = registry.labelled_counts("serving.errors")
        if breakdown:
            codes = ", ".join(
                f"{code}={count}" for code, count in sorted(breakdown.items())
            )
            print(f"errors by code: {codes}")
        print(
            f"retries = {registry.counter('serving.retries')}, "
            f"sheds = {registry.counter('serving.sheds')}"
        )
        print("metrics:")
        print(registry.render_table())

    if durability is not None:
        server.close()
        print(
            f"durable through epoch {server.epoch}: recover with "
            f"`repro recover {durability.directory}`"
        )

    if not baseline:
        return 0

    reference_trace = build_trace(items, rounds, batch, seed=seed)
    reference = GlobalLockServer(reference_trace.problem, max_workers=workers)
    baseline_results = []
    start = time.perf_counter()
    for delta, requests in reference_trace.rounds:
        if delta:
            reference.apply(list(delta))
        baseline_results.extend(reference.serve_batch(requests))
    baseline_seconds = time.perf_counter() - start
    # Under a deadline some snapshot results are typed errors, which the
    # unguarded baseline never produces; the agreement check covers every
    # answered request (deadline off ≡ the historical full identity check).
    identical = all(
        (ours.epoch, ours.answer) == (theirs.epoch, theirs.answer)
        for ours, theirs in zip(snapshot_results, baseline_results)
        if ours.ok
    ) and len(snapshot_results) == len(baseline_results)
    print(
        f"global-lock baseline: {len(baseline_results) / baseline_seconds:.0f} requests/s; "
        f"identical answers = {identical}; "
        f"speedup = {baseline_seconds / snapshot_seconds:.1f}x"
    )
    if not identical:
        print("ERROR: snapshot and baseline answer sequences diverged", file=sys.stderr)
        return 1
    return 0


def _command_recover(path: str) -> int:
    from repro.durability import CorruptRecordError, recover

    try:
        result = recover(path)
    except CorruptRecordError as error:
        print(f"recovery failed: {error}", file=sys.stderr)
        return 1
    database = result.database
    print(f"recovered {path} to epoch {result.epoch}")
    print(
        f"  checkpoint epoch {result.checkpoint_epoch}, "
        f"{result.records_replayed} WAL records replayed, "
        f"{result.records_skipped} already in the checkpoint"
    )
    if result.torn_tail_bytes:
        print(
            f"  discarded a torn tail of {result.torn_tail_bytes} bytes "
            f"(an unacked commit interrupted mid-write)"
        )
    for name in database.relation_names():
        print(f"  {name}: {len(database.relation(name))} rows")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro`` and the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 0
    if args.command == "tables":
        return _command_tables()
    if args.command == "demo":
        return _command_demo(args.k, args.budget)
    if args.command == "experiments":
        return _command_experiments(args.output, args.full, args.only, args.stdout)
    if args.command == "example":
        return _command_example(args.name)
    if args.command == "explain":
        return _command_explain(args.query, args.seed, args.no_statistics, args.analyze)
    if args.command == "serve":
        return _command_serve(
            args.items,
            args.rounds,
            args.batch,
            args.workers,
            args.seed,
            args.baseline,
            args.deadline_ms,
            args.metrics,
            args.wal,
        )
    if args.command == "recover":
        return _command_recover(args.path)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover - argparse guards this
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
