"""Complexity classes appearing in the paper's classification.

The enumeration covers every class named in Tables 8.1 and 8.2 plus the
classes used in intermediate results (Σ₂ᵖ for the compatibility problem,
NP/coNP for data complexity, the function and counting classes).  A coarse
"search regime" is attached to each class: it states how the *deterministic
simulation* implemented in this library is expected to scale, which is what
the benchmark harness can actually observe.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple


class SearchRegime(Enum):
    """How the deterministic solvers realise a class, coarsely."""

    POLYNOMIAL = "polynomial"
    EXPONENTIAL_IN_QUERY = "exponential in the query/instance"
    EXPONENTIAL_IN_DATA = "exponential in |Q(D)|"
    DOUBLY_EXPONENTIAL = "exponential with exponential witnesses"


class ComplexityClass(Enum):
    """Named complexity classes used in the paper."""

    PTIME = "PTIME"
    FP = "FP"
    NP = "NP"
    CONP = "coNP"
    DP = "DP"
    DP2 = "D^p_2"
    SIGMA2P = "Σ^p_2"
    PI2P = "Π^p_2"
    PSPACE = "PSPACE"
    EXPTIME = "EXPTIME"
    FPNP = "FP^NP"
    FPSIGMA2P = "FP^Σp2"
    FPSPACE_POLY = "FPSPACE(poly)"
    FEXPTIME_POLY = "FEXPTIME(poly)"
    SHARP_P = "#·P"
    SHARP_NP = "#·NP"
    SHARP_CONP = "#·coNP"
    SHARP_PSPACE = "#·PSPACE"
    SHARP_EXPTIME = "#·EXPTIME"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_tractable(self) -> bool:
        """Whether the class is (believed) polynomial-time solvable."""
        return self in (ComplexityClass.PTIME, ComplexityClass.FP)

    @property
    def regime(self) -> SearchRegime:
        """The scaling the deterministic solvers of this library exhibit."""
        if self.is_tractable:
            return SearchRegime.POLYNOMIAL
        if self in (
            ComplexityClass.PSPACE,
            ComplexityClass.EXPTIME,
            ComplexityClass.FPSPACE_POLY,
            ComplexityClass.FEXPTIME_POLY,
            ComplexityClass.SHARP_PSPACE,
            ComplexityClass.SHARP_EXPTIME,
        ):
            return SearchRegime.DOUBLY_EXPONENTIAL
        return SearchRegime.EXPONENTIAL_IN_DATA

    @property
    def is_counting_class(self) -> bool:
        """Whether the class is one of the #· counting classes."""
        return self.name.startswith("SHARP")

    @property
    def is_function_class(self) -> bool:
        """Whether the class is a class of (non-counting) function problems."""
        return self in (
            ComplexityClass.FP,
            ComplexityClass.FPNP,
            ComplexityClass.FPSIGMA2P,
            ComplexityClass.FPSPACE_POLY,
            ComplexityClass.FEXPTIME_POLY,
        )


#: A rough hardness ordering used for "who is harder" comparisons in benches.
HARDNESS_ORDER: Tuple[ComplexityClass, ...] = (
    ComplexityClass.PTIME,
    ComplexityClass.FP,
    ComplexityClass.NP,
    ComplexityClass.CONP,
    ComplexityClass.DP,
    ComplexityClass.FPNP,
    ComplexityClass.SHARP_P,
    ComplexityClass.SIGMA2P,
    ComplexityClass.PI2P,
    ComplexityClass.DP2,
    ComplexityClass.FPSIGMA2P,
    ComplexityClass.SHARP_NP,
    ComplexityClass.SHARP_CONP,
    ComplexityClass.PSPACE,
    ComplexityClass.FPSPACE_POLY,
    ComplexityClass.SHARP_PSPACE,
    ComplexityClass.EXPTIME,
    ComplexityClass.FEXPTIME_POLY,
    ComplexityClass.SHARP_EXPTIME,
)


def hardness_rank(complexity_class: ComplexityClass) -> int:
    """Position in the rough hardness ordering (larger = harder)."""
    return HARDNESS_ORDER.index(complexity_class)


def at_least_as_hard(left: ComplexityClass, right: ComplexityClass) -> bool:
    """Whether ``left`` is at least as hard as ``right`` in the rough ordering."""
    return hardness_rank(left) >= hardness_rank(right)
