"""The paper's complexity classification as data (Tables 8.1 and 8.2)."""

from repro.complexity.classes import (
    ComplexityClass,
    HARDNESS_ORDER,
    SearchRegime,
    at_least_as_hard,
    hardness_rank,
)
from repro.complexity.tables import (
    CombinedCell,
    DataCell,
    LanguageGroup,
    Problem,
    TABLE_8_1,
    TABLE_8_2,
    combined_complexity,
    data_complexity,
    paper_findings,
    render_table_8_1,
    render_table_8_2,
)
from repro.queries.languages import ALL_LANGUAGES, QueryLanguage, classify_query

__all__ = [
    "ALL_LANGUAGES",
    "CombinedCell",
    "ComplexityClass",
    "DataCell",
    "HARDNESS_ORDER",
    "LanguageGroup",
    "Problem",
    "QueryLanguage",
    "SearchRegime",
    "TABLE_8_1",
    "TABLE_8_2",
    "at_least_as_hard",
    "classify_query",
    "combined_complexity",
    "data_complexity",
    "hardness_rank",
    "paper_findings",
    "render_table_8_1",
    "render_table_8_2",
]
