"""Tables 8.1 and 8.2 of the paper, as data.

* :data:`TABLE_8_1` — combined complexity of RPP, FRP, MBP, CPP, QRPP and ARPP
  per language group, with and without compatibility constraints.
* :data:`TABLE_8_2` — data complexity per problem, for polynomially bounded
  packages and for constant-bounded packages (the language does not matter for
  data complexity, which is itself one of the paper's findings).

The benchmark harness looks cells up here and prints the paper's class next to
each measurement, and the summary printers regenerate the tables verbatim so
EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple

from repro.complexity.classes import ComplexityClass
from repro.queries.languages import QueryLanguage


class Problem(Enum):
    """The six problems classified by the paper."""

    RPP = "RPP"
    FRP = "FRP"
    MBP = "MBP"
    CPP = "CPP"
    QRPP = "QRPP"
    ARPP = "ARPP"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class LanguageGroup(Enum):
    """The three language groups sharing one row per problem in Table 8.1."""

    CQ_GROUP = "CQ, UCQ, ∃FO+"
    FO_GROUP = "DATALOG_nr, FO"
    DATALOG_GROUP = "DATALOG"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @classmethod
    def of(cls, language: QueryLanguage) -> "LanguageGroup":
        """The group a concrete language belongs to (SP joins the CQ group)."""
        if language in (
            QueryLanguage.SP,
            QueryLanguage.CQ,
            QueryLanguage.UCQ,
            QueryLanguage.EFO_PLUS,
        ):
            return cls.CQ_GROUP
        if language in (QueryLanguage.DATALOG_NR, QueryLanguage.FO):
            return cls.FO_GROUP
        return cls.DATALOG_GROUP


@dataclass(frozen=True)
class CombinedCell:
    """One cell of Table 8.1: with-Qc and without-Qc combined complexity."""

    with_qc: ComplexityClass
    without_qc: ComplexityClass

    def changes_without_qc(self) -> bool:
        """Whether dropping Qc changes the combined complexity (finding (c))."""
        return self.with_qc is not self.without_qc


#: Table 8.1 — combined complexity.
TABLE_8_1: Dict[Tuple[Problem, LanguageGroup], CombinedCell] = {
    # RPP (Theorems 4.1 and 4.5)
    (Problem.RPP, LanguageGroup.CQ_GROUP): CombinedCell(ComplexityClass.PI2P, ComplexityClass.DP),
    (Problem.RPP, LanguageGroup.FO_GROUP): CombinedCell(ComplexityClass.PSPACE, ComplexityClass.PSPACE),
    (Problem.RPP, LanguageGroup.DATALOG_GROUP): CombinedCell(
        ComplexityClass.EXPTIME, ComplexityClass.EXPTIME
    ),
    # FRP (Theorem 5.1)
    (Problem.FRP, LanguageGroup.CQ_GROUP): CombinedCell(
        ComplexityClass.FPSIGMA2P, ComplexityClass.FPNP
    ),
    (Problem.FRP, LanguageGroup.FO_GROUP): CombinedCell(
        ComplexityClass.FPSPACE_POLY, ComplexityClass.FPSPACE_POLY
    ),
    (Problem.FRP, LanguageGroup.DATALOG_GROUP): CombinedCell(
        ComplexityClass.FEXPTIME_POLY, ComplexityClass.FEXPTIME_POLY
    ),
    # MBP (Theorem 5.2)
    (Problem.MBP, LanguageGroup.CQ_GROUP): CombinedCell(ComplexityClass.DP2, ComplexityClass.DP),
    (Problem.MBP, LanguageGroup.FO_GROUP): CombinedCell(
        ComplexityClass.PSPACE, ComplexityClass.PSPACE
    ),
    (Problem.MBP, LanguageGroup.DATALOG_GROUP): CombinedCell(
        ComplexityClass.EXPTIME, ComplexityClass.EXPTIME
    ),
    # CPP (Theorem 5.3)
    (Problem.CPP, LanguageGroup.CQ_GROUP): CombinedCell(
        ComplexityClass.SHARP_CONP, ComplexityClass.SHARP_NP
    ),
    (Problem.CPP, LanguageGroup.FO_GROUP): CombinedCell(
        ComplexityClass.SHARP_PSPACE, ComplexityClass.SHARP_PSPACE
    ),
    (Problem.CPP, LanguageGroup.DATALOG_GROUP): CombinedCell(
        ComplexityClass.SHARP_EXPTIME, ComplexityClass.SHARP_EXPTIME
    ),
    # QRPP (Theorem 7.2)
    (Problem.QRPP, LanguageGroup.CQ_GROUP): CombinedCell(ComplexityClass.SIGMA2P, ComplexityClass.NP),
    (Problem.QRPP, LanguageGroup.FO_GROUP): CombinedCell(
        ComplexityClass.PSPACE, ComplexityClass.PSPACE
    ),
    (Problem.QRPP, LanguageGroup.DATALOG_GROUP): CombinedCell(
        ComplexityClass.EXPTIME, ComplexityClass.EXPTIME
    ),
    # ARPP (Theorem 8.1)
    (Problem.ARPP, LanguageGroup.CQ_GROUP): CombinedCell(ComplexityClass.SIGMA2P, ComplexityClass.NP),
    (Problem.ARPP, LanguageGroup.FO_GROUP): CombinedCell(
        ComplexityClass.PSPACE, ComplexityClass.PSPACE
    ),
    (Problem.ARPP, LanguageGroup.DATALOG_GROUP): CombinedCell(
        ComplexityClass.EXPTIME, ComplexityClass.EXPTIME
    ),
}


@dataclass(frozen=True)
class DataCell:
    """One cell of Table 8.2: poly-bounded and constant-bounded data complexity."""

    poly_bounded: ComplexityClass
    constant_bounded: ComplexityClass

    def constant_bound_helps(self) -> bool:
        """Whether a constant package bound lowers the data complexity (finding (1))."""
        return self.poly_bounded is not self.constant_bounded


#: Table 8.2 — data complexity (identical for every language of Section 2).
TABLE_8_2: Dict[Problem, DataCell] = {
    Problem.RPP: DataCell(ComplexityClass.CONP, ComplexityClass.PTIME),
    Problem.FRP: DataCell(ComplexityClass.FPNP, ComplexityClass.FP),
    Problem.MBP: DataCell(ComplexityClass.DP, ComplexityClass.PTIME),
    Problem.CPP: DataCell(ComplexityClass.SHARP_P, ComplexityClass.FP),
    Problem.QRPP: DataCell(ComplexityClass.NP, ComplexityClass.PTIME),
    Problem.ARPP: DataCell(ComplexityClass.NP, ComplexityClass.NP),
}


# ---------------------------------------------------------------------------
# Lookup and rendering helpers
# ---------------------------------------------------------------------------
def combined_complexity(
    problem: Problem, language: QueryLanguage, with_qc: bool
) -> ComplexityClass:
    """The Table 8.1 cell for a concrete problem/language/Qc regime."""
    cell = TABLE_8_1[(problem, LanguageGroup.of(language))]
    return cell.with_qc if with_qc else cell.without_qc


def data_complexity(problem: Problem, constant_bound: bool) -> ComplexityClass:
    """The Table 8.2 cell for a concrete problem/size-bound regime."""
    cell = TABLE_8_2[problem]
    return cell.constant_bounded if constant_bound else cell.poly_bounded


def render_table_8_1() -> str:
    """Table 8.1 as aligned text (the format EXPERIMENTS.md embeds)."""
    lines = [
        f"{'Problem':8} {'Languages':22} {'with Qc':16} {'without Qc':16}",
        "-" * 66,
    ]
    for problem in Problem:
        for group in LanguageGroup:
            cell = TABLE_8_1[(problem, group)]
            lines.append(
                f"{problem.value:8} {group.value:22} {cell.with_qc.value:16} "
                f"{cell.without_qc.value:16}"
            )
    return "\n".join(lines)


def render_table_8_2() -> str:
    """Table 8.2 as aligned text."""
    lines = [
        f"{'Problem':8} {'poly-bounded':16} {'constant bound':16}",
        "-" * 44,
    ]
    for problem in Problem:
        cell = TABLE_8_2[problem]
        lines.append(
            f"{problem.value:8} {cell.poly_bounded.value:16} {cell.constant_bounded.value:16}"
        )
    return "\n".join(lines)


def paper_findings() -> List[str]:
    """The qualitative findings the summary of Section 9 highlights.

    Each string is checked programmatically by the test-suite against the
    table data, so the tables cannot drift from the narrative.
    """
    return [
        "query languages dominate combined complexity",
        "dropping Qc only helps the CQ group",
        "data complexity is language-independent",
        "a constant package bound makes data complexity tractable except for ARPP",
        "item selections behave like the no-Qc, constant-bound case",
    ]
