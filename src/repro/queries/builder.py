"""Convenience constructors for building queries programmatically.

The hardness reductions and the workload generators build many queries whose
shape depends on instance parameters (number of variables, number of clauses,
...).  The helpers here keep that construction code readable:

>>> x, y = variables("x y")
>>> q = cq([x, y], [atom("edge", x, y)], [neq(x, y)], name="distinct_edges")
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple, Union

from repro.queries.ast import (
    And,
    Comparison,
    ComparisonOp,
    Const,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    Term,
    Var,
    as_term,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.datalog import DatalogProgram, DatalogRule, NonRecursiveDatalogProgram
from repro.queries.efo import PositiveExistentialQuery
from repro.queries.fo import FirstOrderQuery
from repro.queries.sp import SPQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.schema import Value

TermLike = Union[Term, Value]


def variables(names: "str | Iterable[str]") -> Tuple[Var, ...]:
    """Create variables from a space-separated string or an iterable of names."""
    if isinstance(names, str):
        names = names.split()
    return tuple(Var(name) for name in names)


def var(name: str) -> Var:
    """A single variable."""
    return Var(name)


def const(value: Value) -> Const:
    """A single constant term."""
    return Const(value)


def atom(relation: str, *terms: TermLike) -> RelationAtom:
    """A relation atom ``relation(terms...)``; raw values become constants."""
    return RelationAtom(relation, [as_term(t) for t in terms])


def comparison(op: "ComparisonOp | str", left: TermLike, right: TermLike) -> Comparison:
    """A comparison atom."""
    return Comparison(op, as_term(left), as_term(right))


def eq(left: TermLike, right: TermLike) -> Comparison:
    """``left = right``."""
    return comparison(ComparisonOp.EQ, left, right)


def neq(left: TermLike, right: TermLike) -> Comparison:
    """``left ≠ right``."""
    return comparison(ComparisonOp.NE, left, right)


def lt(left: TermLike, right: TermLike) -> Comparison:
    """``left < right``."""
    return comparison(ComparisonOp.LT, left, right)


def le(left: TermLike, right: TermLike) -> Comparison:
    """``left ≤ right``."""
    return comparison(ComparisonOp.LE, left, right)


def gt(left: TermLike, right: TermLike) -> Comparison:
    """``left > right``."""
    return comparison(ComparisonOp.GT, left, right)


def ge(left: TermLike, right: TermLike) -> Comparison:
    """``left ≥ right``."""
    return comparison(ComparisonOp.GE, left, right)


def conj(*formulas: Formula) -> And:
    """Conjunction."""
    return And(*formulas)


def disj(*formulas: Formula) -> Or:
    """Disjunction."""
    return Or(*formulas)


def negation(formula: Formula) -> Not:
    """Negation (FO only)."""
    return Not(formula)


def exists(vars_: "Var | Sequence[Var]", formula: Formula) -> Exists:
    """Existential quantification."""
    return Exists(vars_, formula)


def forall(vars_: "Var | Sequence[Var]", formula: Formula) -> ForAll:
    """Universal quantification (FO only)."""
    return ForAll(vars_, formula)


def cq(
    head: Sequence[TermLike],
    atoms: Iterable[RelationAtom],
    comparisons: Iterable[Comparison] = (),
    name: str = "Q",
) -> ConjunctiveQuery:
    """A conjunctive query."""
    return ConjunctiveQuery(head, atoms, comparisons, name=name)


def ucq(disjuncts: Iterable[ConjunctiveQuery], name: str = "Q") -> UnionOfConjunctiveQueries:
    """A union of conjunctive queries."""
    return UnionOfConjunctiveQueries(disjuncts, name=name)


def efo(head: Sequence[TermLike], formula: Formula, name: str = "Q") -> PositiveExistentialQuery:
    """A positive existential FO query."""
    return PositiveExistentialQuery(head, formula, name=name)


def fo(head: Sequence[TermLike], formula: Formula, name: str = "Q") -> FirstOrderQuery:
    """A first-order query."""
    return FirstOrderQuery(head, formula, name=name)


def sp(
    relation: str,
    relation_terms: Sequence[TermLike],
    head: Sequence[TermLike],
    comparisons: Iterable[Comparison] = (),
    name: str = "Q",
) -> SPQuery:
    """A selection-projection query."""
    return SPQuery(relation, relation_terms, head, comparisons, name=name)


def rule(
    head: RelationAtom,
    body: Iterable[RelationAtom] = (),
    comparisons: Iterable[Comparison] = (),
) -> DatalogRule:
    """A Datalog rule."""
    return DatalogRule(head, body, comparisons)


def datalog(rules: Iterable[DatalogRule], output: str, name: str = "Q") -> DatalogProgram:
    """A (possibly recursive) Datalog program."""
    return DatalogProgram(rules, output, name=name)


def datalog_nr(
    rules: Iterable[DatalogRule], output: str, name: str = "Q"
) -> NonRecursiveDatalogProgram:
    """A non-recursive Datalog program."""
    return NonRecursiveDatalogProgram(rules, output, name=name)


def chain_cq(relation: str, length: int, name: str = "chain") -> ConjunctiveQuery:
    """A path/chain query ``Q(x0, xk) :- R(x0,x1), ..., R(x(k-1),xk)``.

    Used by the scaling benchmarks: increasing ``length`` grows the query while
    keeping the data fixed, which isolates combined-complexity behaviour.
    """
    if length < 1:
        raise ValueError("chain length must be at least 1")
    vars_ = [Var(f"x{i}") for i in range(length + 1)]
    atoms = [RelationAtom(relation, [vars_[i], vars_[i + 1]]) for i in range(length)]
    return ConjunctiveQuery([vars_[0], vars_[length]], atoms, name=name)


def cartesian_cq(relation: str, arity: int, copies: int, name: str = "product") -> ConjunctiveQuery:
    """``Q(x̄1, ..., x̄m) :- R(x̄1), ..., R(x̄m)`` — the truth-assignment generator.

    With ``relation`` bound to the Boolean gadget ``I01`` this is exactly the
    query the paper uses to enumerate truth assignments of ``m`` variables.
    """
    head: List[Var] = []
    atoms: List[RelationAtom] = []
    for copy in range(1, copies + 1):
        copy_vars = [Var(f"x{copy}_{i}") for i in range(1, arity + 1)]
        head.extend(copy_vars)
        atoms.append(RelationAtom(relation, copy_vars))
    return ConjunctiveQuery(head, atoms, name=name)
