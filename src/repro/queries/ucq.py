"""Unions of conjunctive queries (UCQ).

``Q = Q1 ∪ ... ∪ Qr`` where each ``Qi`` is a CQ with the same output arity.
The running item-recommendation example ("direct or one-stop flights") is a
UCQ with two disjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Tuple

from repro.queries.base import Query
from repro.queries.bindings import StepCounter
from repro.queries.cq import ConjunctiveQuery
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import QueryError


@dataclass
class UnionOfConjunctiveQueries(Query):
    """A union of CQs sharing one answer schema."""

    disjuncts: Tuple[ConjunctiveQuery, ...]
    name: str = "Q"
    answer_name: str = Query.answer_name
    #: Each disjunct is a CQ, so the union reads only its own relations.
    active_domain_independent = True

    def __init__(
        self,
        disjuncts: Iterable[ConjunctiveQuery],
        name: str = "Q",
        answer_name: str = Query.answer_name,
    ) -> None:
        self.disjuncts = tuple(disjuncts)
        if not self.disjuncts:
            raise QueryError("a UCQ needs at least one disjunct")
        arities = {cq.output_arity for cq in self.disjuncts}
        if len(arities) != 1:
            raise QueryError(f"UCQ disjuncts disagree on output arity: {sorted(arities)}")
        self.name = name
        self.answer_name = answer_name

    @property
    def output_attributes(self) -> Tuple[str, ...]:
        return self.disjuncts[0].output_attributes

    def relations_used(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for cq in self.disjuncts:
            result |= cq.relations_used()
        return result

    def evaluate(
        self,
        database: Database,
        counter: Optional[StepCounter] = None,
        extra_relations=None,
    ) -> Relation:
        result = self.empty_answer()
        for cq in self.disjuncts:
            partial = cq.evaluate(database, counter=counter, extra_relations=extra_relations)
            result.add_all(partial.rows())
        return result

    def contains(self, database: Database, row: Row) -> bool:
        return any(cq.contains(database, row) for cq in self.disjuncts)

    def is_satisfiable_on(self, database: Database) -> bool:
        """Whether ``Q(D)`` is non-empty."""
        return any(cq.is_satisfiable_on(database) for cq in self.disjuncts)

    def body_size(self) -> int:
        """Total number of atoms across disjuncts."""
        return sum(cq.body_size() for cq in self.disjuncts)

    def constants(self):
        """All constants across disjuncts."""
        values = ()
        for cq in self.disjuncts:
            values += cq.constants()
        return values

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return " ∪ ".join(str(cq) for cq in self.disjuncts)
