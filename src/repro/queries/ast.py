"""Abstract syntax for the query languages of the paper.

All languages share the same atoms: relation atoms over a database schema and
built-in comparison predicates ``=, !=, <, <=, >, >=`` (Section 2).  On top of
those, formulas are built with conjunction, disjunction, negation and
quantifiers; each concrete language restricts which connectives are allowed.

Terms are either variables (:class:`Var`) or constants (:class:`Const`).
Everything is immutable and hashable so queries can be used as dictionary keys
and compared structurally in tests.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.relational.errors import QueryError
from repro.relational.schema import Value


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Var:
    """A query variable, identified by name."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("variable name must be non-empty")

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant value appearing in a query."""

    value: Value

    def __str__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]


def as_term(value: "Term | Value") -> Term:
    """Coerce a raw Python value into a :class:`Const`; pass terms through."""
    if isinstance(value, (Var, Const)):
        return value
    return Const(value)


def term_variables(terms: Iterable[Term]) -> FrozenSet[Var]:
    """The set of variables occurring in ``terms``."""
    return frozenset(t for t in terms if isinstance(t, Var))


def term_constants(terms: Iterable[Term]) -> Tuple[Value, ...]:
    """The constants occurring in ``terms`` (with duplicates, in order)."""
    return tuple(t.value for t in terms if isinstance(t, Const))


class _VarFactory:
    """Generates fresh variables with a common prefix (used by rewrites)."""

    def __init__(self, prefix: str = "_v") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self) -> Var:
        return Var(f"{self._prefix}{next(self._counter)}")


fresh_variables = _VarFactory


# ---------------------------------------------------------------------------
# Comparison operators
# ---------------------------------------------------------------------------
class ComparisonOp(Enum):
    """Built-in predicates available in every language of the paper."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def apply(self, left: Value, right: Value) -> bool:
        """Evaluate the predicate on two constants."""
        if self is ComparisonOp.EQ:
            return left == right
        if self is ComparisonOp.NE:
            return left != right
        if self is ComparisonOp.LT:
            return left < right
        if self is ComparisonOp.LE:
            return left <= right
        if self is ComparisonOp.GT:
            return left > right
        return left >= right

    def negate(self) -> "ComparisonOp":
        """The complementary predicate (used by FO normalisation)."""
        return _NEGATIONS[self]

    def flip(self) -> "ComparisonOp":
        """The predicate with its arguments swapped."""
        return _FLIPS[self]

    @classmethod
    def from_symbol(cls, symbol: str) -> "ComparisonOp":
        """Parse a textual operator (``=``, ``==``, ``!=``, ``<>``, ...)."""
        normalised = {"==": "=", "<>": "!=", "≠": "!=", "≤": "<=", "≥": ">="}.get(symbol, symbol)
        for op in cls:
            if op.value == normalised:
                return op
        raise QueryError(f"unknown comparison operator: {symbol!r}")


_NEGATIONS = {
    ComparisonOp.EQ: ComparisonOp.NE,
    ComparisonOp.NE: ComparisonOp.EQ,
    ComparisonOp.LT: ComparisonOp.GE,
    ComparisonOp.LE: ComparisonOp.GT,
    ComparisonOp.GT: ComparisonOp.LE,
    ComparisonOp.GE: ComparisonOp.LT,
}

_FLIPS = {
    ComparisonOp.EQ: ComparisonOp.EQ,
    ComparisonOp.NE: ComparisonOp.NE,
    ComparisonOp.LT: ComparisonOp.GT,
    ComparisonOp.LE: ComparisonOp.GE,
    ComparisonOp.GT: ComparisonOp.LT,
    ComparisonOp.GE: ComparisonOp.LE,
}


# ---------------------------------------------------------------------------
# Atomic formulas
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RelationAtom:
    """``R(t1, ..., tn)`` over a database or IDB relation."""

    relation: str
    terms: Tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence["Term | Value"]) -> None:
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(as_term(t) for t in terms))

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> FrozenSet[Var]:
        return term_variables(self.terms)

    def constants(self) -> Tuple[Value, ...]:
        return term_constants(self.terms)

    def substitute(self, mapping: Mapping[Var, Term]) -> "RelationAtom":
        """Replace variables according to ``mapping`` (missing vars unchanged)."""
        return RelationAtom(self.relation, [mapping.get(t, t) if isinstance(t, Var) else t for t in self.terms])

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.relation}({args})"


@dataclass(frozen=True)
class Comparison:
    """``t1 op t2`` with a built-in comparison predicate."""

    op: ComparisonOp
    left: Term
    right: Term

    def __init__(self, op: "ComparisonOp | str", left: "Term | Value", right: "Term | Value") -> None:
        if isinstance(op, str):
            op = ComparisonOp.from_symbol(op)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "left", as_term(left))
        object.__setattr__(self, "right", as_term(right))

    def variables(self) -> FrozenSet[Var]:
        return term_variables((self.left, self.right))

    def constants(self) -> Tuple[Value, ...]:
        return term_constants((self.left, self.right))

    def substitute(self, mapping: Mapping[Var, Term]) -> "Comparison":
        left = mapping.get(self.left, self.left) if isinstance(self.left, Var) else self.left
        right = mapping.get(self.right, self.right) if isinstance(self.right, Var) else self.right
        return Comparison(self.op, left, right)

    def evaluate(self, binding: Mapping[str, Value]) -> bool:
        """Evaluate under a binding that must cover all variables involved."""
        left = binding[self.left.name] if isinstance(self.left, Var) else self.left.value
        right = binding[self.right.name] if isinstance(self.right, Var) else self.right.value
        return self.op.apply(left, right)

    def is_ground_under(self, binding: Mapping[str, Value]) -> bool:
        """Whether every variable of the comparison is bound."""
        return all(v.name in binding for v in self.variables())

    def __str__(self) -> str:
        return f"{self.left} {self.op.value} {self.right}"


Atom = Union[RelationAtom, Comparison]


# ---------------------------------------------------------------------------
# Compound formulas (used by ∃FO+ and FO)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class And:
    """Conjunction of formulas."""

    operands: Tuple["Formula", ...]

    def __init__(self, *operands: "Formula") -> None:
        flattened = []
        for operand in operands:
            if isinstance(operand, And):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        object.__setattr__(self, "operands", tuple(flattened))

    def __str__(self) -> str:
        return "(" + " AND ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Or:
    """Disjunction of formulas."""

    operands: Tuple["Formula", ...]

    def __init__(self, *operands: "Formula") -> None:
        flattened = []
        for operand in operands:
            if isinstance(operand, Or):
                flattened.extend(operand.operands)
            else:
                flattened.append(operand)
        object.__setattr__(self, "operands", tuple(flattened))

    def __str__(self) -> str:
        return "(" + " OR ".join(str(o) for o in self.operands) + ")"


@dataclass(frozen=True)
class Not:
    """Negation (only allowed in FO)."""

    operand: "Formula"

    def __str__(self) -> str:
        return f"NOT {self.operand}"


@dataclass(frozen=True)
class Exists:
    """Existential quantification over one or more variables."""

    variables: Tuple[Var, ...]
    operand: "Formula"

    def __init__(self, variables: "Var | Sequence[Var]", operand: "Formula") -> None:
        if isinstance(variables, Var):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "operand", operand)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"EXISTS {names}. {self.operand}"


@dataclass(frozen=True)
class ForAll:
    """Universal quantification (only allowed in FO)."""

    variables: Tuple[Var, ...]
    operand: "Formula"

    def __init__(self, variables: "Var | Sequence[Var]", operand: "Formula") -> None:
        if isinstance(variables, Var):
            variables = (variables,)
        object.__setattr__(self, "variables", tuple(variables))
        object.__setattr__(self, "operand", operand)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"FORALL {names}. {self.operand}"


Formula = Union[RelationAtom, Comparison, And, Or, Not, Exists, ForAll]


# ---------------------------------------------------------------------------
# Structural helpers
# ---------------------------------------------------------------------------
def free_variables(formula: Formula) -> FrozenSet[Var]:
    """Free variables of a formula."""
    if isinstance(formula, (RelationAtom, Comparison)):
        return formula.variables()
    if isinstance(formula, (And, Or)):
        result: FrozenSet[Var] = frozenset()
        for operand in formula.operands:
            result |= free_variables(operand)
        return result
    if isinstance(formula, Not):
        return free_variables(formula.operand)
    if isinstance(formula, (Exists, ForAll)):
        return free_variables(formula.operand) - frozenset(formula.variables)
    raise QueryError(f"unknown formula node: {formula!r}")


def all_variables(formula: Formula) -> FrozenSet[Var]:
    """All variables, free or bound."""
    if isinstance(formula, (RelationAtom, Comparison)):
        return formula.variables()
    if isinstance(formula, (And, Or)):
        result: FrozenSet[Var] = frozenset()
        for operand in formula.operands:
            result |= all_variables(operand)
        return result
    if isinstance(formula, Not):
        return all_variables(formula.operand)
    if isinstance(formula, (Exists, ForAll)):
        return all_variables(formula.operand) | frozenset(formula.variables)
    raise QueryError(f"unknown formula node: {formula!r}")


def formula_constants(formula: Formula) -> Tuple[Value, ...]:
    """All constants occurring in the formula (with duplicates)."""
    if isinstance(formula, (RelationAtom, Comparison)):
        return formula.constants()
    if isinstance(formula, (And, Or)):
        result: Tuple[Value, ...] = ()
        for operand in formula.operands:
            result += formula_constants(operand)
        return result
    if isinstance(formula, Not):
        return formula_constants(formula.operand)
    if isinstance(formula, (Exists, ForAll)):
        return formula_constants(formula.operand)
    raise QueryError(f"unknown formula node: {formula!r}")


def relation_names(formula: Formula) -> FrozenSet[str]:
    """All relation names mentioned in the formula."""
    if isinstance(formula, RelationAtom):
        return frozenset({formula.relation})
    if isinstance(formula, Comparison):
        return frozenset()
    if isinstance(formula, (And, Or)):
        result: FrozenSet[str] = frozenset()
        for operand in formula.operands:
            result |= relation_names(operand)
        return result
    if isinstance(formula, (Not, Exists, ForAll)):
        return relation_names(formula.operand)
    raise QueryError(f"unknown formula node: {formula!r}")


def substitute(formula: Formula, mapping: Mapping[Var, Term]) -> Formula:
    """Capture-avoiding-enough substitution of free variables.

    Bound variables are removed from the mapping before descending, which is
    sufficient because the library always generates fresh bound-variable names.
    """
    if isinstance(formula, (RelationAtom, Comparison)):
        return formula.substitute(mapping)
    if isinstance(formula, And):
        return And(*(substitute(op, mapping) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(*(substitute(op, mapping) for op in formula.operands))
    if isinstance(formula, Not):
        return Not(substitute(formula.operand, mapping))
    if isinstance(formula, (Exists, ForAll)):
        inner_mapping: Dict[Var, Term] = {
            var: term for var, term in mapping.items() if var not in formula.variables
        }
        cls = Exists if isinstance(formula, Exists) else ForAll
        return cls(formula.variables, substitute(formula.operand, inner_mapping))
    raise QueryError(f"unknown formula node: {formula!r}")


def is_positive_existential(formula: Formula) -> bool:
    """Whether the formula uses only atoms, ∧, ∨ and ∃ (the ∃FO+ fragment)."""
    if isinstance(formula, (RelationAtom, Comparison)):
        return True
    if isinstance(formula, (And, Or)):
        return all(is_positive_existential(op) for op in formula.operands)
    if isinstance(formula, Exists):
        return is_positive_existential(formula.operand)
    return False


def is_conjunctive(formula: Formula) -> bool:
    """Whether the formula uses only atoms, ∧ and ∃ (the CQ fragment)."""
    if isinstance(formula, (RelationAtom, Comparison)):
        return True
    if isinstance(formula, And):
        return all(is_conjunctive(op) for op in formula.operands)
    if isinstance(formula, Exists):
        return is_conjunctive(formula.operand)
    return False
