"""Cost-based join planning for conjunctions of relation atoms.

The backtracking evaluator in :mod:`repro.queries.bindings` historically chose
the next atom dynamically and scanned its whole relation at every node.  The
key observation enabling a *static* plan is that after an atom is matched
against a row, **all** of its variables are bound — so the set of bound
variables at depth ``d`` of the search depends only on which atoms were chosen
at depths ``< d``, never on which rows matched.  The atom order is therefore a
function of the prefix alone and can be compiled once per evaluation:

* :func:`plan_conjunction` orders the atoms.  Given per-relation
  :class:`~repro.relational.statistics.RelationStatistics` it picks, at every
  depth, the atom with the lowest *estimated cost* — cardinality scaled by
  ``1/distinct`` for every resolved position (the textbook independence
  estimate) and by a constant selectivity for an applicable range predicate.
  Without statistics it falls back to the historical most-constrained-first
  greedy (resolved-position count, first-wins tie-break), exactly replicating
  the naive evaluator's dynamic order.  Either order yields identical answers
  — only cost may differ — which the differential suite proves across its
  on/off axes.  One honest carve-out: on malformed data whose scheduled
  comparisons are *partial* (a ``TypeError``-raising mixed-type column), which
  rows ever reach a comparison depends on the join order and on semi-join
  pruning, so a reordered or reduced plan may complete where the historical
  order raises (the access paths themselves never widen this: a range probe
  declines rather than filter where the scan would raise).  Answers on
  well-typed data are always identical;
* each :class:`PlannedAtom` records which term positions are resolved when the
  atom runs.  Positions holding constants or bound variables become *probe
  positions*: at runtime the executor asks the relation's lazy hash index
  (:meth:`repro.relational.database.Relation.probe`) for exactly the matching
  rows instead of scanning the relation;
* a step with no probe positions but a *ground one-sided comparison* on one of
  the variables it binds (``price < 30`` with ``30`` a constant or an
  already-bound variable) carries a :class:`PlannedRange`: the executor
  answers it through the relation's sorted index
  (:meth:`repro.relational.database.Relation.range_rows`) with two bisections
  instead of a scan.  The comparison stays in the schedule — the range probe
  is purely an access path, so semantics never depend on it;
* comparisons are scheduled at the earliest depth at which all their variables
  are bound (again a static property), and comparisons whose variables are
  bound by no atom are flagged so the executor can reject the unsafe query
  with the same error as the naive evaluator;
* for *acyclic* conjunctions the planner attaches a join tree
  (:attr:`JoinPlan.semijoin_tree`, computed by GYO ear removal) and, when the
  statistics estimate a large intermediate result, sets
  :attr:`JoinPlan.run_semijoin`: the executor then runs the two Yannakakis
  semi-join passes to prune dangling tuples before the join proper;
* for *cyclic* conjunctions (GYO finds no ear — triangles, 4-cycles,
  stars-with-chords) no join order avoids a large intermediate, so the
  planner compiles a :class:`PlannedMultiway`: a worst-case-optimal
  leapfrog-triejoin step with a statistics-driven global variable
  elimination order, executed against composite trie indexes
  (:meth:`repro.relational.database.Relation.trie_index_on`).  The cost
  model is AGM-style: :func:`multiway_estimate` bounds the multiway
  enumeration by a fractional-edge-cover product of the cardinalities,
  while the binary plan is charged its *worst-case* intermediate (prefix
  products of per-position heavy-hitter frequencies — the independence
  estimate that orders atoms is an average-case figure and is exactly what
  cyclic skew breaks).  :attr:`JoinPlan.run_multiway` records the verdict;
  the executor may override it through the ``use_multiway`` knob but never
  the compiled step.

Compiled plans are cached (:func:`cached_plan`) keyed on the conjunction, the
pre-bound variable names and the statistics snapshot they were costed with —
repeated solver probes of the same ``Qc`` against a database whose statistics
have not drifted stop re-planning entirely.  A plan is semantically valid for
*any* database (statistics only steer cost), so a cache hit can never change
answers.

**Adding a new access path**: the multiway step above is the worked example —
see the ROADMAP's "Adding a new access path" recipe, which walks through it
layer by layer.  In short: extend the plan vocabulary (a new field on
:class:`PlannedAtom` for a per-step path, or a plan-level section like
:class:`PlannedMultiway` for a whole-conjunction strategy), emit it here
behind a cost verdict so the cost-based choice can prefer it, and add the
matching branch in :func:`repro.queries.bindings.enumerate_bindings` behind a
knob defaulting to the planner's verdict.  The access path must surface a
*superset* of the matching rows — or, like the multiway step, prove each
binding it yields row-by-row — and any maintained state it needs on
:class:`~repro.relational.database.Relation` follows the statistics contract:
build lazily, maintain under point mutations, drop under bulk mutations,
*decline* (fall back to the reference semantics) on data it cannot serve
exactly.  The differential suite's axes matrix then certifies the new knob
against the naive reference for free.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.observability import metrics as _metrics
from repro.queries.ast import Comparison, ComparisonOp, Const, RelationAtom, Term, Var
from repro.relational.schema import Value
from repro.relational.statistics import RelationStatistics

#: Assumed fraction of a relation a ground one-sided comparison retains when
#: no histogram is available; only steers atom ordering, never answers.
RANGE_SELECTIVITY = 0.3

#: The semi-join reduction runs when the estimated largest intermediate result
#: exceeds this multiple of the total rows the reduction passes must touch.
SEMIJOIN_INTERMEDIATE_FACTOR = 4.0

#: A columnar kernel pays a per-call dispatch cost, so the planner only votes
#: for it when some scan step's relation is at least this large; below it the
#: tuple-set loop wins.  Steers cost only — the knob can always override.
COLUMNAR_MIN_ROWS = 1024

#: Comparison operators a sorted index can answer with a contiguous range.
_RANGE_OPS = (
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
    ComparisonOp.EQ,
)


@dataclass(frozen=True)
class PlannedRange:
    """A range access path: ``row[position] <op> term`` with ``term`` ground.

    Normalised so the step's own variable is on the left; ``term`` is a
    constant or a variable bound before the step runs.
    """

    position: int
    op: ComparisonOp
    term: Term

    def bound_value(self, binding: Mapping[str, Value]) -> Value:
        """The ground comparison bound under the current binding."""
        return self.term.value if isinstance(self.term, Const) else binding[self.term.name]

    def describe(self) -> str:
        return f"[{self.position}] {self.op.value} {self.term}"


@dataclass(frozen=True)
class PlannedAtom:
    """One step of a join plan: an atom plus its access path.

    ``probe_positions``/``probe_terms`` are the term positions (and the terms
    occupying them) whose values are known before the step runs — constants and
    variables bound earlier.  A non-empty probe means the executor uses a hash
    index lookup; with an empty probe, a non-``None`` ``range_probe`` means a
    sorted-index range lookup, and otherwise the step is a full scan.
    ``new_variables`` are the variable names this step binds for the first
    time.
    """

    atom: RelationAtom
    probe_positions: Tuple[int, ...]
    probe_terms: Tuple[Term, ...]
    new_variables: Tuple[str, ...]
    range_probe: Optional[PlannedRange] = None
    #: The planner's estimated row count for this step (the cost the greedy
    #: ordering paid for it), when statistics were available.  Carried for
    #: EXPLAIN ANALYZE's actual-vs-estimated rendering; never read by the
    #: executor.
    estimated_rows: Optional[float] = None
    #: Every ground one-sided comparison on this step's new variables, as
    #: range forms the columnar kernel can evaluate in one vectorized pass
    #: (the sorted-index ``range_probe`` above carries only the *first* —
    #: bisection answers a single contiguous range, a mask conjunction takes
    #: them all).  Pushed-down comparisons stay in the schedule: the kernel
    #: surfaces a superset and may decline, so semantics never depend on it.
    columnar_pushdowns: Tuple[PlannedRange, ...] = ()

    @property
    def uses_index(self) -> bool:
        """Whether this step runs as a hash-index probe rather than a scan."""
        return bool(self.probe_positions)

    def probe_key(self, binding: Mapping[str, Value]) -> Tuple[Value, ...]:
        """The index key for this step under the current binding."""
        return tuple(
            term.value if isinstance(term, Const) else binding[term.name]
            for term in self.probe_terms
        )

    def describe(self) -> str:
        if self.uses_index:
            probes = ", ".join(
                f"{position}={term}"
                for position, term in zip(self.probe_positions, self.probe_terms)
            )
            return f"probe {self.atom} on [{probes}]"
        if self.range_probe is not None:
            return f"range {self.atom} on {self.range_probe.describe()}"
        return f"scan {self.atom}"


@dataclass(frozen=True)
class MultiwayAtom:
    """One atom's trie access for a :class:`PlannedMultiway` step.

    ``trie_positions`` is the variable order the relation's composite trie is
    built in: positions holding constants first (descended once, before the
    search), then the variable positions grouped per variable in global
    elimination order — so at every global level the atom's trie is parked
    exactly above the levels of the variable being resolved.
    ``const_values`` parallels the leading constant positions;
    ``var_levels`` lists ``(variable, consecutive trie levels)`` pairs — a
    repeated variable (``R(x, x)``) owns two adjacent levels and both are
    descended with the same value.
    """

    atom: RelationAtom
    trie_positions: Tuple[int, ...]
    const_values: Tuple[Value, ...]
    var_levels: Tuple[Tuple[str, int], ...]

    def describe(self) -> str:
        order = ", ".join(str(p) for p in self.trie_positions)
        return f"trie {self.atom} on [{order}]"


@dataclass(frozen=True)
class PlannedMultiway:
    """A worst-case-optimal multiway step over a whole cyclic conjunction.

    Executed by the leapfrog branch of
    :func:`repro.queries.bindings.enumerate_bindings`: variables are resolved
    one at a time in ``var_order``, the candidates of each variable obtained
    by leapfrog-intersecting the sorted current trie levels of every atom
    containing it.  ``comparison_schedule`` has ``len(var_order) + 1``
    entries scheduling each comparison at the earliest level at which it is
    ground (entry ``0`` covers comparisons ground under the initial binding
    alone); ``estimated_answers`` is the AGM-style fractional-cover bound the
    planner's verdict weighed against the binary plan's worst-case
    intermediate.
    """

    var_order: Tuple[str, ...]
    atoms: Tuple[MultiwayAtom, ...]
    comparison_schedule: Tuple[Tuple[int, ...], ...]
    estimated_answers: float

    def describe(self) -> str:
        order = ", ".join(self.var_order)
        lines = [f"multiway leapfrog, variable order [{order}] (AGM ~ {self.estimated_answers:.0f})"]
        lines.extend(f"  {matom.describe()}" for matom in self.atoms)
        return "\n".join(lines)


#: One edge of the semi-join tree: (child step index, parent step index,
#: shared variable names).  A parent of ``-1`` marks the root of a connected
#: component (no filtering edge).  Edges are listed in GYO ear-removal order,
#: which is a valid bottom-up pass order for the Yannakakis reduction.
SemiJoinEdge = Tuple[int, int, Tuple[str, ...]]


@dataclass(frozen=True)
class JoinPlan:
    """An ordered sequence of planned atoms plus a comparison schedule.

    ``comparison_schedule`` has ``len(steps) + 1`` entries: entry ``d`` lists
    the indices (into ``comparisons``) of the comparisons that first become
    ground once ``d`` steps have bound their variables (entry ``0`` covers
    comparisons ground under the initial binding alone).
    ``unresolved_comparisons`` are never ground — the executor raises the
    unsafe-query error when a complete binding is reached, matching the naive
    evaluator.

    ``semijoin_tree`` is the GYO join tree when the conjunction is acyclic
    (empty otherwise); ``run_semijoin`` is the planner's cost-based verdict on
    whether the Yannakakis reduction passes are worth their scans.  The
    executor may override the verdict but never the tree.

    ``multiway`` is the compiled worst-case-optimal step when the conjunction
    is *cyclic* and statistics were available (``None`` otherwise);
    ``run_multiway`` is the planner's verdict — AGM bound below the binary
    plan's worst-case intermediate.  The binary ``steps`` are always compiled
    too: they are the fallback when a trie declines (mixed-type columns) and
    the path taken when the ``use_multiway`` knob is off.

    ``run_columnar`` is the planner's verdict on the vectorized columnar
    kernels: some scan step is large enough (:data:`COLUMNAR_MIN_ROWS`) for
    vectorized selection to beat the tuple-set loop.  The executor's
    ``use_columnar`` knob may override the verdict; the per-step
    ``columnar_pushdowns`` are compiled regardless so the knob has something
    to run.
    """

    steps: Tuple[PlannedAtom, ...]
    comparisons: Tuple[Comparison, ...]
    comparison_schedule: Tuple[Tuple[int, ...], ...]
    unresolved_comparisons: Tuple[int, ...]
    semijoin_tree: Tuple[SemiJoinEdge, ...] = ()
    run_semijoin: bool = False
    multiway: Optional[PlannedMultiway] = None
    run_multiway: bool = False
    run_columnar: bool = False

    def describe(self) -> str:
        """A textual rendering of the plan, one line per step."""
        lines = [step.describe() for step in self.steps]
        for depth, scheduled in enumerate(self.comparison_schedule):
            for index in scheduled:
                lines.append(f"check {self.comparisons[index]} at depth {depth}")
        if self.semijoin_tree:
            state = "on" if self.run_semijoin else "off"
            edges = ", ".join(
                f"{child}→{parent}" if parent >= 0 else f"{child}→·"
                for child, parent, _ in self.semijoin_tree
            )
            lines.append(f"semi-join reduction {state} (acyclic: {edges})")
        if self.multiway is not None:
            state = "on" if self.run_multiway else "off"
            lines.append(f"multiway {state} (cyclic):")
            lines.append(self.multiway.describe())
        columnar_steps = [step for step in self.steps if step.columnar_pushdowns]
        if columnar_steps:
            state = "on" if self.run_columnar else "off"
            for step in columnar_steps:
                pushdowns = ", ".join(
                    planned.describe() for planned in step.columnar_pushdowns
                )
                lines.append(f"columnar {state} {step.atom} pushdown [{pushdowns}]")
        return "\n".join(lines) if lines else "empty plan"


def most_constrained_index(
    remaining: Sequence[RelationAtom], bound: "Set[str] | Mapping[str, Value]"
) -> int:
    """Index of the atom with the most resolved term positions (first wins ties).

    ``bound`` is any container answering ``name in bound`` — the planner passes
    the set of statically bound names, the naive evaluator its live binding
    dict.  Sharing one scoring function is what keeps the planned and naive
    search trees identical whenever no index is applicable.
    """
    best_index = 0
    best_score = -1
    for index, atom in enumerate(remaining):
        score = 0
        for term in atom.terms:
            if isinstance(term, Const) or term.name in bound:
                score += 1
        if score > best_score:
            best_score = score
            best_index = index
    return best_index


# ---------------------------------------------------------------------------
# Range-probe detection
# ---------------------------------------------------------------------------
def _range_form(
    atom: RelationAtom, bound: Set[str], comparison: Comparison
) -> Optional[PlannedRange]:
    """``comparison`` as a range probe for ``atom``, or ``None``.

    Eligible when one side is a variable the atom binds for the first time and
    the other side is ground before the step (a constant or a bound variable);
    the operator is normalised so the atom's variable is on the left.
    """
    for var_side, ground_side, op in (
        (comparison.left, comparison.right, comparison.op),
        (comparison.right, comparison.left, comparison.op.flip()),
    ):
        if not isinstance(var_side, Var) or var_side.name in bound:
            continue
        if isinstance(ground_side, Var) and ground_side.name not in bound:
            continue
        if op not in _RANGE_OPS:
            continue
        for position, term in enumerate(atom.terms):
            if isinstance(term, Var) and term.name == var_side.name:
                return PlannedRange(position, op, ground_side)
    return None


def _first_range_form(
    atom: RelationAtom, bound: Set[str], comparisons: Sequence[Comparison]
) -> Optional[PlannedRange]:
    for comparison in comparisons:
        form = _range_form(atom, bound, comparison)
        if form is not None:
            return form
    return None


def _all_range_forms(
    atom: RelationAtom, bound: Set[str], comparisons: Sequence[Comparison]
) -> Tuple[PlannedRange, ...]:
    """Every comparison eligible as a range form for ``atom``, in query order."""
    forms = []
    for comparison in comparisons:
        form = _range_form(atom, bound, comparison)
        if form is not None:
            forms.append(form)
    return tuple(forms)


# ---------------------------------------------------------------------------
# Cost estimation
# ---------------------------------------------------------------------------
def _estimated_cost(
    atom: RelationAtom,
    bound: Set[str],
    comparisons: Sequence[Comparison],
    stats: RelationStatistics,
) -> float:
    """Estimated candidate rows the step surfaces (the executor's tick count).

    Cardinality scaled by ``1/distinct`` per resolved position (independence
    assumption); a scan with an applicable range predicate is credited the
    flat :data:`RANGE_SELECTIVITY`.
    """
    estimate = float(stats.cardinality)
    resolved = False
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const) or (isinstance(term, Var) and term.name in bound):
            estimate /= max(1, stats.distinct(position))
            resolved = True
    if not resolved and _first_range_form(atom, bound, comparisons) is not None:
        estimate *= RANGE_SELECTIVITY
    return estimate


def _cheapest_index(
    remaining: Sequence[RelationAtom],
    bound: Set[str],
    comparisons: Sequence[Comparison],
    statistics: Mapping[str, RelationStatistics],
) -> Tuple[int, float]:
    """Index (and cost) of the cheapest remaining atom; first wins ties."""
    best_index = 0
    best_cost: Optional[float] = None
    for index, atom in enumerate(remaining):
        cost = _estimated_cost(atom, bound, comparisons, statistics[atom.relation])
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
    assert best_cost is not None
    return best_index, best_cost


# ---------------------------------------------------------------------------
# Acyclicity / join tree (GYO ear removal)
# ---------------------------------------------------------------------------
def _join_tree(
    atoms: Sequence[RelationAtom], bound_variables: FrozenSet[str]
) -> Optional[Tuple[SemiJoinEdge, ...]]:
    """The GYO join tree over the atoms' free variables, or ``None`` if cyclic.

    Initially-bound variables act as constants and drop out of the hypergraph.
    Edges are returned in ear-removal order: each entry ``(child, parent,
    shared)`` says the child atom hangs off ``parent`` via the shared variable
    names (``parent == -1`` for the isolated root of a component).
    """
    var_sets = [
        frozenset(v.name for v in atom.variables()) - bound_variables for atom in atoms
    ]
    alive = set(range(len(atoms)))
    edges: List[SemiJoinEdge] = []
    while len(alive) > 1:
        ear: Optional[SemiJoinEdge] = None
        for index in sorted(alive):
            others = sorted(alive - {index})
            shared = var_sets[index] & frozenset().union(*(var_sets[j] for j in others))
            if not shared:
                ear = (index, -1, ())
                break
            parent = next((j for j in others if shared <= var_sets[j]), None)
            if parent is not None:
                ear = (index, parent, tuple(sorted(shared)))
                break
        if ear is None:
            return None  # no ear: the hypergraph is cyclic
        edges.append(ear)
        alive.discard(ear[0])
    return tuple(edges)


def _take_ready_comparisons(
    comparisons: Sequence[Comparison], scheduled: Set[int], bound: Set[str]
) -> Tuple[int, ...]:
    """Indices of comparisons newly ground under ``bound``; marks them scheduled.

    The earliest-ground scheduling rule shared by the binary plan (one entry
    per join step) and the multiway plan (one entry per elimination level) —
    one implementation so the two schedules can never drift apart.
    """
    ready = tuple(
        index
        for index, comparison in enumerate(comparisons)
        if index not in scheduled
        and all(var.name in bound for var in comparison.variables())
    )
    scheduled.update(ready)
    return ready


# ---------------------------------------------------------------------------
# Worst-case-optimal multiway compilation
# ---------------------------------------------------------------------------
def multiway_estimate(
    atoms: Sequence[RelationAtom],
    bound_variables: FrozenSet[str],
    statistics: Mapping[str, RelationStatistics],
) -> float:
    """An AGM-style bound on the answers of a conjunction: ∏ |Rᵢ|^wᵢ.

    The weights are a (generally sub-optimal but always valid) fractional
    edge cover: an atom holding a variable no other atom mentions must carry
    weight 1; every other atom carries weight ½, which covers each remaining
    variable because it occurs in at least two atoms.  For the canonical
    cyclic shapes this is exact — a triangle or a 4-cycle of ``n``-row
    relations is bounded by ``n^{3/2}`` / ``n²`` respectively — and it is the
    enumeration bound the leapfrog executor meets, so the verdict weighs it
    against the binary plan's worst-case intermediate.  Initially bound
    variables act as constants and need no cover.
    """
    occurrences: Dict[str, int] = {}
    for atom in atoms:
        for name in {v.name for v in atom.variables()} - bound_variables:
            occurrences[name] = occurrences.get(name, 0) + 1
    estimate = 1.0
    for atom in atoms:
        names = {v.name for v in atom.variables()} - bound_variables
        if not names:
            continue  # a ground atom is a membership test: weight 0
        weight = 1.0 if any(occurrences[name] == 1 for name in names) else 0.5
        estimate *= float(max(statistics[atom.relation].cardinality, 1)) ** weight
    return estimate


def _elimination_order(
    atoms: Sequence[RelationAtom],
    bound_variables: FrozenSet[str],
    statistics: Mapping[str, RelationStatistics],
) -> Tuple[str, ...]:
    """A cost-ordered global variable elimination order for the leapfrog join.

    Initially bound variables come first (they are singleton candidates at
    runtime, so resolving them early prunes every trie below them).  The rest
    are chosen greedily: the variable with the fewest candidate values — the
    minimum, over its occurrences, of the position's distinct count — among
    those *connected* to the variables already placed (sharing an atom), so
    the intersections stay selective instead of degenerating into a cross
    product.  Ties break towards variables occurring in more atoms, then by
    name, keeping the order deterministic for the plan cache.
    """
    occurrences: Dict[str, List[Tuple[str, int]]] = {}
    for atom in atoms:
        seen: Set[str] = set()
        for position, term in enumerate(atom.terms):
            if isinstance(term, Var) and term.name not in seen:
                seen.add(term.name)
                occurrences.setdefault(term.name, []).append((atom.relation, position))

    def score(name: str) -> Tuple[float, int, str]:
        candidates = min(
            max(1, statistics[relation].distinct(position))
            for relation, position in occurrences[name]
        )
        return (float(candidates), -len(occurrences[name]), name)

    order = sorted(name for name in occurrences if name in bound_variables)
    placed = set(order)
    remaining = {name for name in occurrences if name not in placed}
    atom_vars = [
        {v.name for v in atom.variables()} for atom in atoms
    ]
    while remaining:
        connected = {
            name
            for names in atom_vars
            if names & placed
            for name in names & remaining
        }
        pool = connected or remaining
        choice = min(pool, key=score)
        order.append(choice)
        placed.add(choice)
        remaining.discard(choice)
    return tuple(order)


def _compile_multiway(
    atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison],
    bound_variables: FrozenSet[str],
    statistics: Mapping[str, RelationStatistics],
) -> PlannedMultiway:
    """Compile the leapfrog step: elimination order, per-atom tries, schedule."""
    var_order = _elimination_order(atoms, bound_variables, statistics)
    order_index = {name: level for level, name in enumerate(var_order)}

    multiway_atoms: List[MultiwayAtom] = []
    for atom in atoms:
        const_positions: List[int] = []
        var_positions: "OrderedDict[str, List[int]]" = OrderedDict()
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const):
                const_positions.append(position)
            else:
                var_positions.setdefault(term.name, []).append(position)
        ordered_names = sorted(var_positions, key=order_index.__getitem__)
        trie_positions = tuple(const_positions) + tuple(
            position for name in ordered_names for position in var_positions[name]
        )
        multiway_atoms.append(
            MultiwayAtom(
                atom,
                trie_positions,
                tuple(atom.terms[p].value for p in const_positions),
                tuple((name, len(var_positions[name])) for name in ordered_names),
            )
        )

    scheduled: Set[int] = set()
    bound: Set[str] = set(bound_variables)
    schedule: List[Tuple[int, ...]] = [
        _take_ready_comparisons(comparisons, scheduled, bound)
    ]
    for name in var_order:
        bound.add(name)
        schedule.append(_take_ready_comparisons(comparisons, scheduled, bound))

    return PlannedMultiway(
        var_order,
        tuple(multiway_atoms),
        tuple(schedule),
        multiway_estimate(atoms, bound_variables, statistics),
    )


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
def plan_conjunction(
    relation_atoms: Iterable[RelationAtom],
    comparisons: Iterable[Comparison] = (),
    bound_variables: "FrozenSet[str] | Set[str]" = frozenset(),
    statistics: Optional[Mapping[str, RelationStatistics]] = None,
    compile_ranges: bool = True,
    compile_columnar: bool = True,
) -> JoinPlan:
    """Compile a conjunction of atoms into an ordered :class:`JoinPlan`.

    ``bound_variables`` are the names bound before the search starts (the
    evaluator's ``initial_binding``); their values participate in index probes
    from the first step on.  ``statistics`` maps relation names to
    :class:`~repro.relational.statistics.RelationStatistics`; when present for
    *every* atom it drives cost-based atom ordering and the semi-join verdict,
    otherwise the historical most-constrained-first order is used wholesale.
    ``compile_ranges=False`` suppresses range probes (the pre-statistics
    planner, kept addressable for benchmarks and differential axes);
    ``compile_columnar=False`` likewise suppresses columnar pushdowns and the
    columnar verdict (the executor passes it when its ``use_columnar`` knob
    is forced off, keeping that plan byte-identical to the pre-columnar one).
    """
    remaining: List[RelationAtom] = list(relation_atoms)
    conjunction = tuple(remaining)
    comparisons = tuple(comparisons)
    initially_bound = frozenset(bound_variables)
    bound: Set[str] = set(initially_bound)
    scheduled: Set[int] = set()

    costed = statistics is not None and all(
        atom.relation in statistics for atom in remaining
    )
    total_rows = (
        sum(statistics[atom.relation].cardinality for atom in remaining) if costed else 0
    )

    schedule: List[Tuple[int, ...]] = [
        _take_ready_comparisons(comparisons, scheduled, bound)
    ]
    steps: List[PlannedAtom] = []
    prefix = 1.0
    max_intermediate = 0.0
    worst_prefix = 1.0
    worst_intermediate = 0.0
    while remaining:
        estimated_rows: Optional[float] = None
        if costed:
            choice, cost = _cheapest_index(remaining, bound, comparisons, statistics)
            estimated_rows = cost
            prefix *= max(cost, 1e-9)
            max_intermediate = max(max_intermediate, prefix)
        else:
            choice = most_constrained_index(remaining, bound)
        atom = remaining.pop(choice)
        probe_positions: List[int] = []
        probe_terms: List[Term] = []
        new_variables: List[str] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const) or term.name in bound:
                probe_positions.append(position)
                probe_terms.append(term)
            elif term.name not in new_variables:
                # A repeated unbound variable (e.g. R(x, x)) stays out of the
                # probe; the executor's row matcher enforces the equality.
                new_variables.append(term.name)
        if costed:
            # The *worst-case* intermediate the binary order could surface: a
            # probed step yields at most the heavy-hitter bucket of its most
            # selective probe position, an unprobed step the whole relation.
            # This is the degree bound the multiway verdict weighs the AGM
            # estimate against — the average-case `prefix` above is exactly
            # what skewed cyclic data breaks.
            step_stats = statistics[atom.relation]
            if probe_positions:
                worst_step = min(
                    step_stats.max_frequency(position) for position in probe_positions
                )
            else:
                worst_step = step_stats.cardinality
            worst_prefix *= float(worst_step)
            worst_intermediate = max(worst_intermediate, worst_prefix)
        range_probe = None
        if compile_ranges and not probe_positions:
            range_probe = _first_range_form(atom, bound, comparisons)
        columnar_pushdowns: Tuple[PlannedRange, ...] = ()
        if compile_columnar and not probe_positions:
            columnar_pushdowns = _all_range_forms(atom, bound, comparisons)
        bound.update(new_variables)
        steps.append(
            PlannedAtom(
                atom,
                tuple(probe_positions),
                tuple(probe_terms),
                tuple(new_variables),
                range_probe,
                estimated_rows,
                columnar_pushdowns,
            )
        )
        schedule.append(_take_ready_comparisons(comparisons, scheduled, bound))
    unresolved = tuple(
        index for index in range(len(comparisons)) if index not in scheduled
    )
    tree = _join_tree([step.atom for step in steps], initially_bound) if len(steps) > 1 else None
    run_semijoin = bool(
        tree
        and costed
        # A tree without a filtering edge (a cross product of components)
        # cannot prune anything, so the reduction passes would be pure cost.
        and any(parent >= 0 and shared for _, parent, shared in tree)
        and max_intermediate > SEMIJOIN_INTERMEDIATE_FACTOR * max(total_rows, 1)
    )
    multiway: Optional[PlannedMultiway] = None
    run_multiway = False
    if costed and tree is None and len(steps) >= 3:
        # Cyclic (GYO found no ear) and costed: compile the leapfrog step.
        # Statistics are required — the elimination order and the verdict are
        # both cost-based, so the statistics-blind planner stays binary.
        multiway = _compile_multiway(conjunction, comparisons, initially_bound, statistics)
        run_multiway = multiway.estimated_answers < worst_intermediate
    run_columnar = bool(
        costed
        and any(
            step.columnar_pushdowns
            and statistics[step.atom.relation].cardinality >= COLUMNAR_MIN_ROWS
            for step in steps
        )
    )
    return JoinPlan(
        tuple(steps),
        comparisons,
        tuple(schedule),
        unresolved,
        tree or (),
        run_semijoin,
        multiway,
        run_multiway,
        run_columnar,
    )


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------
_PLAN_CACHE: "OrderedDict[tuple, JoinPlan]" = OrderedDict()
_PLAN_CACHE_LIMIT = 1024
_PLAN_CACHE_COUNTERS = {"hits": 0, "misses": 0}
#: Serving readers share the cache across threads; the lock keeps the
#: get/move_to_end/popitem LRU bookkeeping atomic (planning itself runs
#: outside it — two threads may race to compile the same plan, and the
#: loser's insert simply overwrites an identical entry).
_PLAN_CACHE_LOCK = threading.Lock()


def _quantized_stats_key(stats: RelationStatistics) -> Tuple:
    """A log2-bucketed rendering of a statistics snapshot, for cache keying.

    Cost-based choices are stable under small cardinality drift, so keying
    the cache on exact counts would turn every single-tuple delta — and every
    ``Qc`` probe's answer-relation swap — into a miss.  Bucketing by bit
    length replans only when a relation roughly doubles or halves; the cached
    plan was costed with the first-seen exact statistics of its bucket, which
    can only steer cost, never answers.
    """
    return (
        stats.relation,
        stats.cardinality.bit_length(),
        tuple(count.bit_length() for count in stats.distinct_counts),
        # Heavy-hitter frequencies below 8 share one bucket: they can steer
        # no verdict, and without the floor every single-tuple delta to a
        # small bucket (3 → 4 rows of one value) would needlessly replan.
        tuple(max(count, 8).bit_length() for count in stats.max_frequencies),
    )


def cached_plan(
    relation_atoms: Tuple[RelationAtom, ...],
    comparisons: Tuple[Comparison, ...],
    bound_names: FrozenSet[str],
    statistics: Optional[Mapping[str, RelationStatistics]] = None,
    compile_ranges: bool = True,
    compile_columnar: bool = True,
    epoch: Optional[Tuple] = None,
) -> JoinPlan:
    """:func:`plan_conjunction` behind an LRU keyed on its semantic inputs.

    The key includes a *quantized* statistics snapshot rather than a database
    identity: repeated probes of one conjunction replan only when the
    statistics drift across a power-of-two bucket, and identically-shaped
    databases share plans.  Safe by construction — a compiled plan answers
    correctly on any database; a stale or colliding entry can only cost time,
    never answers.

    ``epoch`` is the snapshot-isolation component: a
    :class:`~repro.relational.database.DatabaseSnapshot` exposes
    ``plan_epoch = (id(source), epoch)`` and the evaluator threads it through,
    so plans resolved at one pinned epoch are shared by every reader at that
    epoch and never collide across epochs.  The live database contributes
    ``None`` (no ``plan_epoch`` attribute), preserving the PR 4-5 keying
    byte-for-byte.
    """
    stats_key = (
        tuple(sorted(_quantized_stats_key(stats) for stats in statistics.values()))
        if statistics is not None
        else None
    )
    key = (
        relation_atoms,
        comparisons,
        bound_names,
        stats_key,
        compile_ranges,
        compile_columnar,
        epoch,
    )
    with _PLAN_CACHE_LOCK:
        plan = _PLAN_CACHE.get(key)
        if plan is not None:
            _PLAN_CACHE_COUNTERS["hits"] += 1
            _PLAN_CACHE.move_to_end(key)
    if plan is not None:
        # Counted outside the cache lock: the registry write must never
        # extend the critical section every serving worker serialises on.
        active = _metrics._ACTIVE
        if active is not None:
            active.inc("plan.cache.hits")
        return plan
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE_COUNTERS["misses"] += 1
    active = _metrics._ACTIVE
    if active is not None:
        active.inc("plan.cache.misses")
    plan = plan_conjunction(
        relation_atoms,
        comparisons,
        bound_names,
        statistics=statistics,
        compile_ranges=compile_ranges,
        compile_columnar=compile_columnar,
    )
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE[key] = plan
        if len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
            _PLAN_CACHE.popitem(last=False)
    return plan


def plan_cache_info() -> Dict[str, int]:
    """Hit/miss counters and current size of the plan cache (for tests)."""
    with _PLAN_CACHE_LOCK:
        return {**_PLAN_CACHE_COUNTERS, "size": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    """Empty the plan cache and reset its counters."""
    with _PLAN_CACHE_LOCK:
        _PLAN_CACHE.clear()
        _PLAN_CACHE_COUNTERS["hits"] = 0
        _PLAN_CACHE_COUNTERS["misses"] = 0
