"""Join planning for conjunctions of relation atoms.

The backtracking evaluator in :mod:`repro.queries.bindings` historically chose
the next atom dynamically and scanned its whole relation at every node.  The
key observation enabling a *static* plan is that after an atom is matched
against a row, **all** of its variables are bound — so the set of bound
variables at depth ``d`` of the search depends only on which atoms were chosen
at depths ``< d``, never on which rows matched.  The dynamic
most-constrained-first choice is therefore a function of the prefix alone and
can be compiled once per evaluation:

* :func:`plan_conjunction` orders the atoms greedily by the number of
  already-resolved term positions (constants, initially-bound variables, and
  variables bound by earlier atoms), exactly replicating the historical
  dynamic order including its first-wins tie-break;
* each :class:`PlannedAtom` records which term positions are resolved when the
  atom runs.  Positions holding constants or bound variables become *probe
  positions*: at runtime the executor asks the relation's lazy hash index
  (:meth:`repro.relational.database.Relation.probe`) for exactly the matching
  rows instead of scanning the relation;
* comparisons are scheduled at the earliest depth at which all their variables
  are bound (again a static property), and comparisons whose variables are
  bound by no atom are flagged so the executor can reject the unsafe query
  with the same error as the naive evaluator.

Adding a new access path (e.g. a sorted index for range comparisons) means
extending :class:`PlannedAtom` with a new probe kind here and teaching the
executor in :mod:`repro.queries.bindings` how to drive it; the planner's
ordering and scheduling logic stay unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.queries.ast import Comparison, Const, RelationAtom, Term
from repro.relational.schema import Value


@dataclass(frozen=True)
class PlannedAtom:
    """One step of a join plan: an atom plus its access path.

    ``probe_positions``/``probe_terms`` are the term positions (and the terms
    occupying them) whose values are known before the step runs — constants and
    variables bound earlier.  A non-empty probe means the executor uses a hash
    index lookup; an empty probe means a full scan.  ``new_variables`` are the
    variable names this step binds for the first time.
    """

    atom: RelationAtom
    probe_positions: Tuple[int, ...]
    probe_terms: Tuple[Term, ...]
    new_variables: Tuple[str, ...]

    @property
    def uses_index(self) -> bool:
        """Whether this step runs as an index probe rather than a full scan."""
        return bool(self.probe_positions)

    def probe_key(self, binding: Mapping[str, Value]) -> Tuple[Value, ...]:
        """The index key for this step under the current binding."""
        return tuple(
            term.value if isinstance(term, Const) else binding[term.name]
            for term in self.probe_terms
        )

    def describe(self) -> str:
        if not self.uses_index:
            return f"scan {self.atom}"
        probes = ", ".join(
            f"{position}={term}" for position, term in zip(self.probe_positions, self.probe_terms)
        )
        return f"probe {self.atom} on [{probes}]"


@dataclass(frozen=True)
class JoinPlan:
    """An ordered sequence of planned atoms plus a comparison schedule.

    ``comparison_schedule`` has ``len(steps) + 1`` entries: entry ``d`` lists
    the indices (into ``comparisons``) of the comparisons that first become
    ground once ``d`` steps have bound their variables (entry ``0`` covers
    comparisons ground under the initial binding alone).
    ``unresolved_comparisons`` are never ground — the executor raises the
    unsafe-query error when a complete binding is reached, matching the naive
    evaluator.
    """

    steps: Tuple[PlannedAtom, ...]
    comparisons: Tuple[Comparison, ...]
    comparison_schedule: Tuple[Tuple[int, ...], ...]
    unresolved_comparisons: Tuple[int, ...]

    def describe(self) -> str:
        """A textual rendering of the plan, one line per step."""
        lines = [step.describe() for step in self.steps]
        for depth, scheduled in enumerate(self.comparison_schedule):
            for index in scheduled:
                lines.append(f"check {self.comparisons[index]} at depth {depth}")
        return "\n".join(lines) if lines else "empty plan"


def most_constrained_index(
    remaining: Sequence[RelationAtom], bound: "Set[str] | Mapping[str, Value]"
) -> int:
    """Index of the atom with the most resolved term positions (first wins ties).

    ``bound`` is any container answering ``name in bound`` — the planner passes
    the set of statically bound names, the naive evaluator its live binding
    dict.  Sharing one scoring function is what keeps the planned and naive
    search trees identical whenever no index is applicable.
    """
    best_index = 0
    best_score = -1
    for index, atom in enumerate(remaining):
        score = 0
        for term in atom.terms:
            if isinstance(term, Const) or term.name in bound:
                score += 1
        if score > best_score:
            best_score = score
            best_index = index
    return best_index


def plan_conjunction(
    relation_atoms: Iterable[RelationAtom],
    comparisons: Iterable[Comparison] = (),
    bound_variables: "FrozenSet[str] | Set[str]" = frozenset(),
) -> JoinPlan:
    """Compile a conjunction of atoms into an ordered :class:`JoinPlan`.

    ``bound_variables`` are the names bound before the search starts (the
    evaluator's ``initial_binding``); their values participate in index probes
    from the first step on.
    """
    remaining: List[RelationAtom] = list(relation_atoms)
    comparisons = tuple(comparisons)
    bound: Set[str] = set(bound_variables)
    scheduled: Set[int] = set()

    def take_ready() -> Tuple[int, ...]:
        ready = tuple(
            index
            for index, comparison in enumerate(comparisons)
            if index not in scheduled
            and all(var.name in bound for var in comparison.variables())
        )
        scheduled.update(ready)
        return ready

    schedule: List[Tuple[int, ...]] = [take_ready()]
    steps: List[PlannedAtom] = []
    while remaining:
        atom = remaining.pop(most_constrained_index(remaining, bound))
        probe_positions: List[int] = []
        probe_terms: List[Term] = []
        new_variables: List[str] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const) or term.name in bound:
                probe_positions.append(position)
                probe_terms.append(term)
            elif term.name not in new_variables:
                # A repeated unbound variable (e.g. R(x, x)) stays out of the
                # probe; the executor's row matcher enforces the equality.
                new_variables.append(term.name)
        bound.update(new_variables)
        steps.append(
            PlannedAtom(atom, tuple(probe_positions), tuple(probe_terms), tuple(new_variables))
        )
        schedule.append(take_ready())
    unresolved = tuple(
        index for index in range(len(comparisons)) if index not in scheduled
    )
    return JoinPlan(tuple(steps), comparisons, tuple(schedule), unresolved)
