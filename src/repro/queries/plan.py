"""Cost-based join planning for conjunctions of relation atoms.

The backtracking evaluator in :mod:`repro.queries.bindings` historically chose
the next atom dynamically and scanned its whole relation at every node.  The
key observation enabling a *static* plan is that after an atom is matched
against a row, **all** of its variables are bound — so the set of bound
variables at depth ``d`` of the search depends only on which atoms were chosen
at depths ``< d``, never on which rows matched.  The atom order is therefore a
function of the prefix alone and can be compiled once per evaluation:

* :func:`plan_conjunction` orders the atoms.  Given per-relation
  :class:`~repro.relational.statistics.RelationStatistics` it picks, at every
  depth, the atom with the lowest *estimated cost* — cardinality scaled by
  ``1/distinct`` for every resolved position (the textbook independence
  estimate) and by a constant selectivity for an applicable range predicate.
  Without statistics it falls back to the historical most-constrained-first
  greedy (resolved-position count, first-wins tie-break), exactly replicating
  the naive evaluator's dynamic order.  Either order yields identical answers
  — only cost may differ — which the differential suite proves across its
  on/off axes.  One honest carve-out: on malformed data whose scheduled
  comparisons are *partial* (a ``TypeError``-raising mixed-type column), which
  rows ever reach a comparison depends on the join order and on semi-join
  pruning, so a reordered or reduced plan may complete where the historical
  order raises (the access paths themselves never widen this: a range probe
  declines rather than filter where the scan would raise).  Answers on
  well-typed data are always identical;
* each :class:`PlannedAtom` records which term positions are resolved when the
  atom runs.  Positions holding constants or bound variables become *probe
  positions*: at runtime the executor asks the relation's lazy hash index
  (:meth:`repro.relational.database.Relation.probe`) for exactly the matching
  rows instead of scanning the relation;
* a step with no probe positions but a *ground one-sided comparison* on one of
  the variables it binds (``price < 30`` with ``30`` a constant or an
  already-bound variable) carries a :class:`PlannedRange`: the executor
  answers it through the relation's sorted index
  (:meth:`repro.relational.database.Relation.range_rows`) with two bisections
  instead of a scan.  The comparison stays in the schedule — the range probe
  is purely an access path, so semantics never depend on it;
* comparisons are scheduled at the earliest depth at which all their variables
  are bound (again a static property), and comparisons whose variables are
  bound by no atom are flagged so the executor can reject the unsafe query
  with the same error as the naive evaluator;
* for *acyclic* conjunctions the planner attaches a join tree
  (:attr:`JoinPlan.semijoin_tree`, computed by GYO ear removal) and, when the
  statistics estimate a large intermediate result, sets
  :attr:`JoinPlan.run_semijoin`: the executor then runs the two Yannakakis
  semi-join passes to prune dangling tuples before the join proper.

Compiled plans are cached (:func:`cached_plan`) keyed on the conjunction, the
pre-bound variable names and the statistics snapshot they were costed with —
repeated solver probes of the same ``Qc`` against a database whose statistics
have not drifted stop re-planning entirely.  A plan is semantically valid for
*any* database (statistics only steer cost), so a cache hit can never change
answers.

**Adding a new access path** (a worst-case-optimal multiway step, a
composite sorted index, ...): extend :class:`PlannedAtom` with the new probe
kind, emit it here — teaching :func:`_estimated_cost` its selectivity so the
ordering can favour it — and add the matching ``rows`` selection branch in
:func:`repro.queries.bindings.enumerate_bindings`.  The access path must
surface a *superset* of the matching rows (the executor re-checks every row
against the atom and the comparison schedule), which is what lets the
differential suite certify it against the naive reference for free.  If the
path needs new maintained state on :class:`~repro.relational.database.Relation`
follow the statistics contract: build lazily, maintain under point mutations,
drop under bulk mutations.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.queries.ast import Comparison, ComparisonOp, Const, RelationAtom, Term, Var
from repro.relational.schema import Value
from repro.relational.statistics import RelationStatistics

#: Assumed fraction of a relation a ground one-sided comparison retains when
#: no histogram is available; only steers atom ordering, never answers.
RANGE_SELECTIVITY = 0.3

#: The semi-join reduction runs when the estimated largest intermediate result
#: exceeds this multiple of the total rows the reduction passes must touch.
SEMIJOIN_INTERMEDIATE_FACTOR = 4.0

#: Comparison operators a sorted index can answer with a contiguous range.
_RANGE_OPS = (
    ComparisonOp.LT,
    ComparisonOp.LE,
    ComparisonOp.GT,
    ComparisonOp.GE,
    ComparisonOp.EQ,
)


@dataclass(frozen=True)
class PlannedRange:
    """A range access path: ``row[position] <op> term`` with ``term`` ground.

    Normalised so the step's own variable is on the left; ``term`` is a
    constant or a variable bound before the step runs.
    """

    position: int
    op: ComparisonOp
    term: Term

    def bound_value(self, binding: Mapping[str, Value]) -> Value:
        """The ground comparison bound under the current binding."""
        return self.term.value if isinstance(self.term, Const) else binding[self.term.name]

    def describe(self) -> str:
        return f"[{self.position}] {self.op.value} {self.term}"


@dataclass(frozen=True)
class PlannedAtom:
    """One step of a join plan: an atom plus its access path.

    ``probe_positions``/``probe_terms`` are the term positions (and the terms
    occupying them) whose values are known before the step runs — constants and
    variables bound earlier.  A non-empty probe means the executor uses a hash
    index lookup; with an empty probe, a non-``None`` ``range_probe`` means a
    sorted-index range lookup, and otherwise the step is a full scan.
    ``new_variables`` are the variable names this step binds for the first
    time.
    """

    atom: RelationAtom
    probe_positions: Tuple[int, ...]
    probe_terms: Tuple[Term, ...]
    new_variables: Tuple[str, ...]
    range_probe: Optional[PlannedRange] = None

    @property
    def uses_index(self) -> bool:
        """Whether this step runs as a hash-index probe rather than a scan."""
        return bool(self.probe_positions)

    def probe_key(self, binding: Mapping[str, Value]) -> Tuple[Value, ...]:
        """The index key for this step under the current binding."""
        return tuple(
            term.value if isinstance(term, Const) else binding[term.name]
            for term in self.probe_terms
        )

    def describe(self) -> str:
        if self.uses_index:
            probes = ", ".join(
                f"{position}={term}"
                for position, term in zip(self.probe_positions, self.probe_terms)
            )
            return f"probe {self.atom} on [{probes}]"
        if self.range_probe is not None:
            return f"range {self.atom} on {self.range_probe.describe()}"
        return f"scan {self.atom}"


#: One edge of the semi-join tree: (child step index, parent step index,
#: shared variable names).  A parent of ``-1`` marks the root of a connected
#: component (no filtering edge).  Edges are listed in GYO ear-removal order,
#: which is a valid bottom-up pass order for the Yannakakis reduction.
SemiJoinEdge = Tuple[int, int, Tuple[str, ...]]


@dataclass(frozen=True)
class JoinPlan:
    """An ordered sequence of planned atoms plus a comparison schedule.

    ``comparison_schedule`` has ``len(steps) + 1`` entries: entry ``d`` lists
    the indices (into ``comparisons``) of the comparisons that first become
    ground once ``d`` steps have bound their variables (entry ``0`` covers
    comparisons ground under the initial binding alone).
    ``unresolved_comparisons`` are never ground — the executor raises the
    unsafe-query error when a complete binding is reached, matching the naive
    evaluator.

    ``semijoin_tree`` is the GYO join tree when the conjunction is acyclic
    (empty otherwise); ``run_semijoin`` is the planner's cost-based verdict on
    whether the Yannakakis reduction passes are worth their scans.  The
    executor may override the verdict but never the tree.
    """

    steps: Tuple[PlannedAtom, ...]
    comparisons: Tuple[Comparison, ...]
    comparison_schedule: Tuple[Tuple[int, ...], ...]
    unresolved_comparisons: Tuple[int, ...]
    semijoin_tree: Tuple[SemiJoinEdge, ...] = ()
    run_semijoin: bool = False

    def describe(self) -> str:
        """A textual rendering of the plan, one line per step."""
        lines = [step.describe() for step in self.steps]
        for depth, scheduled in enumerate(self.comparison_schedule):
            for index in scheduled:
                lines.append(f"check {self.comparisons[index]} at depth {depth}")
        if self.semijoin_tree:
            state = "on" if self.run_semijoin else "off"
            edges = ", ".join(
                f"{child}→{parent}" if parent >= 0 else f"{child}→·"
                for child, parent, _ in self.semijoin_tree
            )
            lines.append(f"semi-join reduction {state} (acyclic: {edges})")
        return "\n".join(lines) if lines else "empty plan"


def most_constrained_index(
    remaining: Sequence[RelationAtom], bound: "Set[str] | Mapping[str, Value]"
) -> int:
    """Index of the atom with the most resolved term positions (first wins ties).

    ``bound`` is any container answering ``name in bound`` — the planner passes
    the set of statically bound names, the naive evaluator its live binding
    dict.  Sharing one scoring function is what keeps the planned and naive
    search trees identical whenever no index is applicable.
    """
    best_index = 0
    best_score = -1
    for index, atom in enumerate(remaining):
        score = 0
        for term in atom.terms:
            if isinstance(term, Const) or term.name in bound:
                score += 1
        if score > best_score:
            best_score = score
            best_index = index
    return best_index


# ---------------------------------------------------------------------------
# Range-probe detection
# ---------------------------------------------------------------------------
def _range_form(
    atom: RelationAtom, bound: Set[str], comparison: Comparison
) -> Optional[PlannedRange]:
    """``comparison`` as a range probe for ``atom``, or ``None``.

    Eligible when one side is a variable the atom binds for the first time and
    the other side is ground before the step (a constant or a bound variable);
    the operator is normalised so the atom's variable is on the left.
    """
    for var_side, ground_side, op in (
        (comparison.left, comparison.right, comparison.op),
        (comparison.right, comparison.left, comparison.op.flip()),
    ):
        if not isinstance(var_side, Var) or var_side.name in bound:
            continue
        if isinstance(ground_side, Var) and ground_side.name not in bound:
            continue
        if op not in _RANGE_OPS:
            continue
        for position, term in enumerate(atom.terms):
            if isinstance(term, Var) and term.name == var_side.name:
                return PlannedRange(position, op, ground_side)
    return None


def _first_range_form(
    atom: RelationAtom, bound: Set[str], comparisons: Sequence[Comparison]
) -> Optional[PlannedRange]:
    for comparison in comparisons:
        form = _range_form(atom, bound, comparison)
        if form is not None:
            return form
    return None


# ---------------------------------------------------------------------------
# Cost estimation
# ---------------------------------------------------------------------------
def _estimated_cost(
    atom: RelationAtom,
    bound: Set[str],
    comparisons: Sequence[Comparison],
    stats: RelationStatistics,
) -> float:
    """Estimated candidate rows the step surfaces (the executor's tick count).

    Cardinality scaled by ``1/distinct`` per resolved position (independence
    assumption); a scan with an applicable range predicate is credited the
    flat :data:`RANGE_SELECTIVITY`.
    """
    estimate = float(stats.cardinality)
    resolved = False
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const) or (isinstance(term, Var) and term.name in bound):
            estimate /= max(1, stats.distinct(position))
            resolved = True
    if not resolved and _first_range_form(atom, bound, comparisons) is not None:
        estimate *= RANGE_SELECTIVITY
    return estimate


def _cheapest_index(
    remaining: Sequence[RelationAtom],
    bound: Set[str],
    comparisons: Sequence[Comparison],
    statistics: Mapping[str, RelationStatistics],
) -> Tuple[int, float]:
    """Index (and cost) of the cheapest remaining atom; first wins ties."""
    best_index = 0
    best_cost: Optional[float] = None
    for index, atom in enumerate(remaining):
        cost = _estimated_cost(atom, bound, comparisons, statistics[atom.relation])
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
    assert best_cost is not None
    return best_index, best_cost


# ---------------------------------------------------------------------------
# Acyclicity / join tree (GYO ear removal)
# ---------------------------------------------------------------------------
def _join_tree(
    atoms: Sequence[RelationAtom], bound_variables: FrozenSet[str]
) -> Optional[Tuple[SemiJoinEdge, ...]]:
    """The GYO join tree over the atoms' free variables, or ``None`` if cyclic.

    Initially-bound variables act as constants and drop out of the hypergraph.
    Edges are returned in ear-removal order: each entry ``(child, parent,
    shared)`` says the child atom hangs off ``parent`` via the shared variable
    names (``parent == -1`` for the isolated root of a component).
    """
    var_sets = [
        frozenset(v.name for v in atom.variables()) - bound_variables for atom in atoms
    ]
    alive = set(range(len(atoms)))
    edges: List[SemiJoinEdge] = []
    while len(alive) > 1:
        ear: Optional[SemiJoinEdge] = None
        for index in sorted(alive):
            others = sorted(alive - {index})
            shared = var_sets[index] & frozenset().union(*(var_sets[j] for j in others))
            if not shared:
                ear = (index, -1, ())
                break
            parent = next((j for j in others if shared <= var_sets[j]), None)
            if parent is not None:
                ear = (index, parent, tuple(sorted(shared)))
                break
        if ear is None:
            return None  # no ear: the hypergraph is cyclic
        edges.append(ear)
        alive.discard(ear[0])
    return tuple(edges)


# ---------------------------------------------------------------------------
# The planner
# ---------------------------------------------------------------------------
def plan_conjunction(
    relation_atoms: Iterable[RelationAtom],
    comparisons: Iterable[Comparison] = (),
    bound_variables: "FrozenSet[str] | Set[str]" = frozenset(),
    statistics: Optional[Mapping[str, RelationStatistics]] = None,
    compile_ranges: bool = True,
) -> JoinPlan:
    """Compile a conjunction of atoms into an ordered :class:`JoinPlan`.

    ``bound_variables`` are the names bound before the search starts (the
    evaluator's ``initial_binding``); their values participate in index probes
    from the first step on.  ``statistics`` maps relation names to
    :class:`~repro.relational.statistics.RelationStatistics`; when present for
    *every* atom it drives cost-based atom ordering and the semi-join verdict,
    otherwise the historical most-constrained-first order is used wholesale.
    ``compile_ranges=False`` suppresses range probes (the pre-statistics
    planner, kept addressable for benchmarks and differential axes).
    """
    remaining: List[RelationAtom] = list(relation_atoms)
    comparisons = tuple(comparisons)
    initially_bound = frozenset(bound_variables)
    bound: Set[str] = set(initially_bound)
    scheduled: Set[int] = set()

    costed = statistics is not None and all(
        atom.relation in statistics for atom in remaining
    )
    total_rows = (
        sum(statistics[atom.relation].cardinality for atom in remaining) if costed else 0
    )

    def take_ready() -> Tuple[int, ...]:
        ready = tuple(
            index
            for index, comparison in enumerate(comparisons)
            if index not in scheduled
            and all(var.name in bound for var in comparison.variables())
        )
        scheduled.update(ready)
        return ready

    schedule: List[Tuple[int, ...]] = [take_ready()]
    steps: List[PlannedAtom] = []
    prefix = 1.0
    max_intermediate = 0.0
    while remaining:
        if costed:
            choice, cost = _cheapest_index(remaining, bound, comparisons, statistics)
            prefix *= max(cost, 1e-9)
            max_intermediate = max(max_intermediate, prefix)
        else:
            choice = most_constrained_index(remaining, bound)
        atom = remaining.pop(choice)
        probe_positions: List[int] = []
        probe_terms: List[Term] = []
        new_variables: List[str] = []
        for position, term in enumerate(atom.terms):
            if isinstance(term, Const) or term.name in bound:
                probe_positions.append(position)
                probe_terms.append(term)
            elif term.name not in new_variables:
                # A repeated unbound variable (e.g. R(x, x)) stays out of the
                # probe; the executor's row matcher enforces the equality.
                new_variables.append(term.name)
        range_probe = None
        if compile_ranges and not probe_positions:
            range_probe = _first_range_form(atom, bound, comparisons)
        bound.update(new_variables)
        steps.append(
            PlannedAtom(
                atom,
                tuple(probe_positions),
                tuple(probe_terms),
                tuple(new_variables),
                range_probe,
            )
        )
        schedule.append(take_ready())
    unresolved = tuple(
        index for index in range(len(comparisons)) if index not in scheduled
    )
    tree = _join_tree([step.atom for step in steps], initially_bound) if len(steps) > 1 else None
    run_semijoin = bool(
        tree
        and costed
        # A tree without a filtering edge (a cross product of components)
        # cannot prune anything, so the reduction passes would be pure cost.
        and any(parent >= 0 and shared for _, parent, shared in tree)
        and max_intermediate > SEMIJOIN_INTERMEDIATE_FACTOR * max(total_rows, 1)
    )
    return JoinPlan(
        tuple(steps),
        comparisons,
        tuple(schedule),
        unresolved,
        tree or (),
        run_semijoin,
    )


# ---------------------------------------------------------------------------
# The plan cache
# ---------------------------------------------------------------------------
_PLAN_CACHE: "OrderedDict[tuple, JoinPlan]" = OrderedDict()
_PLAN_CACHE_LIMIT = 1024
_PLAN_CACHE_COUNTERS = {"hits": 0, "misses": 0}


def _quantized_stats_key(stats: RelationStatistics) -> Tuple:
    """A log2-bucketed rendering of a statistics snapshot, for cache keying.

    Cost-based choices are stable under small cardinality drift, so keying
    the cache on exact counts would turn every single-tuple delta — and every
    ``Qc`` probe's answer-relation swap — into a miss.  Bucketing by bit
    length replans only when a relation roughly doubles or halves; the cached
    plan was costed with the first-seen exact statistics of its bucket, which
    can only steer cost, never answers.
    """
    return (
        stats.relation,
        stats.cardinality.bit_length(),
        tuple(count.bit_length() for count in stats.distinct_counts),
    )


def cached_plan(
    relation_atoms: Tuple[RelationAtom, ...],
    comparisons: Tuple[Comparison, ...],
    bound_names: FrozenSet[str],
    statistics: Optional[Mapping[str, RelationStatistics]] = None,
    compile_ranges: bool = True,
) -> JoinPlan:
    """:func:`plan_conjunction` behind an LRU keyed on its semantic inputs.

    The key includes a *quantized* statistics snapshot rather than a database
    identity: repeated probes of one conjunction replan only when the
    statistics drift across a power-of-two bucket, and identically-shaped
    databases share plans.  Safe by construction — a compiled plan answers
    correctly on any database; a stale or colliding entry can only cost time,
    never answers.
    """
    stats_key = (
        tuple(sorted(_quantized_stats_key(stats) for stats in statistics.values()))
        if statistics is not None
        else None
    )
    key = (relation_atoms, comparisons, bound_names, stats_key, compile_ranges)
    plan = _PLAN_CACHE.get(key)
    if plan is not None:
        _PLAN_CACHE_COUNTERS["hits"] += 1
        _PLAN_CACHE.move_to_end(key)
        return plan
    _PLAN_CACHE_COUNTERS["misses"] += 1
    plan = plan_conjunction(
        relation_atoms,
        comparisons,
        bound_names,
        statistics=statistics,
        compile_ranges=compile_ranges,
    )
    _PLAN_CACHE[key] = plan
    if len(_PLAN_CACHE) > _PLAN_CACHE_LIMIT:
        _PLAN_CACHE.popitem(last=False)
    return plan


def plan_cache_info() -> Dict[str, int]:
    """Hit/miss counters and current size of the plan cache (for tests)."""
    return {**_PLAN_CACHE_COUNTERS, "size": len(_PLAN_CACHE)}


def clear_plan_cache() -> None:
    """Empty the plan cache and reset its counters."""
    _PLAN_CACHE.clear()
    _PLAN_CACHE_COUNTERS["hits"] = 0
    _PLAN_CACHE_COUNTERS["misses"] = 0
