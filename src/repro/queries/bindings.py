"""Evaluation of conjunctions of atoms: the indexed planner path and the naive path.

This is the work-horse shared by conjunctive queries, union of conjunctive
queries, positive-existential queries (per disjunct) and Datalog rule bodies:
given a list of relation atoms and comparisons, enumerate all bindings of the
variables that satisfy every atom against a database.

Two evaluation paths are provided and kept semantically identical:

* :func:`enumerate_bindings` — the production path.  It compiles the
  conjunction into a :class:`~repro.queries.plan.JoinPlan` (see
  :mod:`repro.queries.plan`): atoms are ordered most-constrained-first, and a
  step whose atom carries constants or already-bound variables runs as a hash
  *index probe* against the relation's lazy index
  (:meth:`repro.relational.database.Relation.probe`) instead of a full scan.
  Only rows returned by the probe are considered — and ticked — so the
  tractable fragments of the paper (SP/CQ decision variants) run in the low
  polynomial time their upper bounds promise instead of re-scanning whole
  relations per atom.

* :func:`enumerate_bindings_naive` — the historical backtracking search,
  retained as the reference implementation.  It chooses atoms dynamically and
  scans relations in full.  The differential test-suite
  (``tests/test_evaluator_differential.py``) asserts that both paths return
  exactly the same binding multisets on randomly generated databases and
  queries, which is what licenses every caller to use the fast path.

``StepCounter`` semantics are shared by both paths: one tick per search node
entered plus one tick per candidate row considered.  Because an index probe
only surfaces rows that match the bound positions, the planned path ticks at
most as often as the naive one — and exactly as often when no index applies
(no constants and no bound variables), which the planner tests pin down.

**Extending the evaluator with a new access path** (e.g. sorted indexes for
range predicates, or a worst-case-optimal multiway step): add the new probe
kind to :class:`~repro.queries.plan.PlannedAtom`, emit it in
:func:`~repro.queries.plan.plan_conjunction`, and add the corresponding
``rows`` selection branch in the executor below.  The differential suite then
checks the new path against the naive reference for free.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.queries.ast import Comparison, Const, RelationAtom, Term
from repro.queries.plan import JoinPlan, most_constrained_index, plan_conjunction
from repro.relational.database import Database, Relation
from repro.relational.errors import EvaluationError
from repro.relational.schema import Value

Binding = Dict[str, Value]


class StepCounter:
    """Optional guard limiting the number of search steps of an evaluation.

    The hardness reductions intentionally create exponential searches; the
    benchmark harness uses a counter both to abort runaway configurations and
    to report the number of explored nodes as a machine-independent cost
    measure.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.limit = limit
        self.steps = 0

    def tick(self, amount: int = 1) -> None:
        self.steps += amount
        if self.limit is not None and self.steps > self.limit:
            raise EvaluationError(
                f"evaluation exceeded the step limit of {self.limit} search steps"
            )


def _match_atom_against_row(
    atom: RelationAtom, row: Tuple[Value, ...], binding: Binding
) -> Optional[Binding]:
    """Try to extend ``binding`` so that ``atom`` matches ``row``.

    Returns the extended binding, or ``None`` when the row is incompatible.
    """
    extension: Binding = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = binding.get(term.name, extension.get(term.name, _UNBOUND))
            if bound is _UNBOUND:
                extension[term.name] = value
            elif bound != value:
                return None
    if not extension:
        return dict(binding)
    merged = dict(binding)
    merged.update(extension)
    return merged


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _ready_comparisons(
    comparisons: Sequence[Comparison], binding: Binding, checked: set
) -> Optional[bool]:
    """Check all comparisons whose variables are fully bound.

    Returns ``False`` as soon as one fails, ``True`` otherwise; indices of the
    newly checked comparisons are added to ``checked``.
    """
    for index, comparison in enumerate(comparisons):
        if index in checked:
            continue
        if comparison.is_ground_under(binding):
            checked.add(index)
            if not comparison.evaluate(binding):
                return False
    return True


def _unsafe_comparison_error(
    comparisons: Sequence[Comparison], unresolved: Iterable[int]
) -> EvaluationError:
    names = [str(comparisons[index]) for index in unresolved]
    return EvaluationError(
        "comparisons with variables not bound by any relation atom: " + ", ".join(names)
    )


def enumerate_bindings(
    database: Database,
    relation_atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison] = (),
    initial_binding: Optional[Mapping[str, Value]] = None,
    counter: Optional[StepCounter] = None,
    extra_relations: Optional[Mapping[str, Relation]] = None,
    plan: Optional[JoinPlan] = None,
) -> Iterator[Binding]:
    """Yield every binding satisfying all atoms, via an indexed join plan.

    Parameters
    ----------
    database:
        The database providing the extensional relations.
    relation_atoms, comparisons:
        The conjunction to satisfy.
    initial_binding:
        Pre-bound variables (used by Datalog semi-naive evaluation and by the
        FO evaluator when descending under quantifiers).
    counter:
        Optional :class:`StepCounter` resource guard.
    extra_relations:
        Relations overriding / extending the database by name (used for IDB
        predicates and for the answer relation ``RQ`` in compatibility
        checks).
    plan:
        A precompiled :class:`~repro.queries.plan.JoinPlan` for this
        conjunction.  When omitted, one is compiled here; callers evaluating
        the same conjunction with the same pre-bound variable *names* many
        times may compile once and pass it in.
    """
    extra_relations = extra_relations or {}

    def lookup(name: str) -> Relation:
        if name in extra_relations:
            return extra_relations[name]
        return database.relation(name)

    # Fail fast on unknown relations so that errors surface deterministically.
    for atom in relation_atoms:
        lookup(atom.relation)

    base_binding: Binding = dict(initial_binding or {})
    if plan is None:
        plan = plan_conjunction(relation_atoms, comparisons, frozenset(base_binding))
    planned_comparisons = plan.comparisons
    steps = plan.steps

    def execute(depth: int, binding: Binding) -> Iterator[Binding]:
        if counter is not None:
            counter.tick()
        for index in plan.comparison_schedule[depth]:
            if not planned_comparisons[index].evaluate(binding):
                return
        if depth == len(steps):
            if plan.unresolved_comparisons:
                # Some comparison still has unbound variables: unsafe query.
                raise _unsafe_comparison_error(planned_comparisons, plan.unresolved_comparisons)
            yield dict(binding)
            return
        step = steps[depth]
        relation = lookup(step.atom.relation)
        if step.uses_index:
            rows: Iterable[Tuple[Value, ...]] = relation.probe(
                step.probe_positions, step.probe_key(binding)
            )
        else:
            rows = relation
        # A full scan iterates the live row set, so mutating the relation while
        # this generator is suspended raises the usual RuntimeError; the index
        # probe iterates a frozen bucket, so check the version explicitly to
        # fail just as loudly instead of mixing pre- and post-mutation states.
        version = relation.version
        for row in rows:
            if relation.version != version:
                raise EvaluationError(
                    f"relation {relation.name!r} was mutated during evaluation"
                )
            if counter is not None:
                counter.tick()
            extended = _match_atom_against_row(step.atom, row, binding)
            if extended is None:
                continue
            yield from execute(depth + 1, extended)

    yield from execute(0, base_binding)


def enumerate_bindings_naive(
    database: Database,
    relation_atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison] = (),
    initial_binding: Optional[Mapping[str, Value]] = None,
    counter: Optional[StepCounter] = None,
    extra_relations: Optional[Mapping[str, Relation]] = None,
) -> Iterator[Binding]:
    """The historical backtracking evaluator: dynamic atom choice, full scans.

    Semantically identical to :func:`enumerate_bindings`; kept as the reference
    path for the differential test harness and as the baseline the evaluator
    benchmark measures the indexed path against.  Takes the same parameters
    except for ``plan`` (it never plans).
    """
    extra_relations = extra_relations or {}

    def lookup(name: str) -> Relation:
        if name in extra_relations:
            return extra_relations[name]
        return database.relation(name)

    # Fail fast on unknown relations so that errors surface deterministically.
    for atom in relation_atoms:
        lookup(atom.relation)

    base_binding: Binding = dict(initial_binding or {})
    comparisons = list(comparisons)

    def backtrack(remaining: List[RelationAtom], binding: Binding, checked: set) -> Iterator[Binding]:
        if counter is not None:
            counter.tick()
        status = _ready_comparisons(comparisons, binding, checked)
        if status is False:
            return
        if not remaining:
            if len(checked) != len(comparisons):
                # Some comparison still has unbound variables: unsafe query.
                raise _unsafe_comparison_error(
                    comparisons,
                    (i for i in range(len(comparisons)) if i not in checked),
                )
            yield dict(binding)
            return
        index = most_constrained_index(remaining, binding)
        atom = remaining[index]
        rest = remaining[:index] + remaining[index + 1 :]
        for row in lookup(atom.relation):
            if counter is not None:
                counter.tick()
            extended = _match_atom_against_row(atom, row, binding)
            if extended is None:
                continue
            yield from backtrack(rest, extended, set(checked))

    yield from backtrack(list(relation_atoms), base_binding, set())


def project_binding(binding: Mapping[str, Value], head: Sequence[Term]) -> Tuple[Value, ...]:
    """Instantiate a head term list under a binding."""
    values: List[Value] = []
    for term in head:
        if isinstance(term, Const):
            values.append(term.value)
        else:
            if term.name not in binding:
                raise EvaluationError(f"unsafe head variable: {term.name!r} is not bound")
            values.append(binding[term.name])
    return tuple(values)
