"""Evaluation of conjunctions of atoms: the indexed planner path and the naive path.

This is the work-horse shared by conjunctive queries, union of conjunctive
queries, positive-existential queries (per disjunct) and Datalog rule bodies:
given a list of relation atoms and comparisons, enumerate all bindings of the
variables that satisfy every atom against a database.

Two evaluation paths are provided and kept semantically identical:

* :func:`enumerate_bindings` — the production path.  It compiles the
  conjunction into a :class:`~repro.queries.plan.JoinPlan` (see
  :mod:`repro.queries.plan`): atoms are ordered by estimated cost when the
  relations supply statistics (most-constrained-first otherwise), and a step
  whose atom carries constants or already-bound variables runs as a hash
  *index probe* against the relation's lazy index
  (:meth:`repro.relational.database.Relation.probe`) instead of a full scan;
  a scan step with a ground one-sided comparison runs as a sorted-index
  *range probe* (:meth:`repro.relational.database.Relation.range_rows`),
  for acyclic conjunctions whose statistics predict a large intermediate
  result a Yannakakis semi-join reduction prunes dangling tuples before the
  join runs, and *cyclic* conjunctions (triangles, 4-cycles) run a
  worst-case-optimal leapfrog triejoin over composite trie indexes
  (:meth:`repro.relational.database.Relation.trie_index_on`) instead of a
  sequence of binary steps, bounding the work by the AGM fractional-cover
  size of the query.  Only rows surfaced by the access path are considered — and
  ticked — so the tractable fragments of the paper (SP/CQ decision variants)
  run in the low polynomial time their upper bounds promise instead of
  re-scanning whole relations per atom.  Compiled plans are served from the
  plan cache (:func:`~repro.queries.plan.cached_plan`), keyed on the
  conjunction plus the statistics snapshot, so repeated probes of one query
  stop re-planning.

* :func:`enumerate_bindings_naive` — the historical backtracking search,
  retained as the reference implementation.  It chooses atoms dynamically and
  scans relations in full.  The differential test-suite
  (``tests/test_evaluator_differential.py``) asserts that both paths return
  exactly the same binding multisets on randomly generated databases and
  queries, which is what licenses every caller to use the fast path.

``StepCounter`` semantics are shared by both paths: one tick per search node
entered plus one tick per candidate row considered.  Because an index probe
only surfaces rows that match the bound positions, the planned path ticks at
most as often as the naive one — and exactly as often when no index applies
(no constants and no bound variables), which the planner tests pin down.

**Extending the evaluator with a new access path**: the multiway leapfrog
branch below is the worked example — see the ROADMAP's "Adding a new access
path" recipe.  Add the new plan vocabulary in
:mod:`repro.queries.plan`, emit it in
:func:`~repro.queries.plan.plan_conjunction` behind a cost verdict, and add
the corresponding execution branch below behind a knob defaulting to that
verdict.  The differential suite's axes matrix then checks the new path
against the naive reference for free.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.queries.ast import Comparison, Const, RelationAtom, Term, Var
from repro.queries.plan import JoinPlan, PlannedMultiway, cached_plan, most_constrained_index
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import EvaluationError, StepLimitExceeded
from repro.relational.schema import Value
from repro.relational.statistics import leapfrog_intersect
from repro.resilience.deadline import Deadline, current_deadline

Binding = Dict[str, Value]

#: How many ticks a :class:`StepCounter` accumulates before flushing them to
#: its deadline.  Amortises the wall-clock read; a request can overshoot its
#: deadline by at most this many search steps.
_DEADLINE_FLUSH_EVERY = 128


class StepCounter:
    """Optional guard limiting the number of search steps of an evaluation.

    The hardness reductions intentionally create exponential searches; the
    benchmark harness uses a counter both to abort runaway configurations and
    to report the number of explored nodes as a machine-independent cost
    measure.  A counter may also carry a request
    :class:`~repro.resilience.deadline.Deadline`: ticks are batched and
    flushed to it every :data:`_DEADLINE_FLUSH_EVERY` steps, so wall-clock /
    cancellation checks cost one comparison per step on average while the
    step accounting itself stays exact.
    """

    def __init__(
        self, limit: Optional[int] = None, deadline: Optional[Deadline] = None
    ) -> None:
        self.limit = limit
        self.steps = 0
        self.deadline = deadline
        self._unflushed = 0

    def tick(self, amount: int = 1) -> None:
        self.steps += amount
        if self.limit is not None and self.steps > self.limit:
            raise StepLimitExceeded(self.limit, self.steps)
        if self.deadline is not None:
            self._unflushed += amount
            if self._unflushed >= _DEADLINE_FLUSH_EVERY:
                flushed, self._unflushed = self._unflushed, 0
                self.deadline.tick(flushed)


def _deadline_guarded(counter: Optional[StepCounter]) -> Optional[StepCounter]:
    """Attach the ambient request deadline (if any) to an evaluation's counter.

    Called once at each evaluator entry point: with no ambient deadline the
    caller's counter passes through untouched (the unguarded path stays
    bit-identical); otherwise the deadline is checked fail-fast and wired
    into the counter — creating one if the caller passed none — so the hot
    loops' existing ``counter.tick()`` calls enforce it from then on.  A
    counter that already carries a deadline keeps it (the innermost request
    scope owns the budget).
    """
    deadline = current_deadline()
    if deadline is None:
        return counter
    deadline.check()
    if counter is None:
        return StepCounter(deadline=deadline)
    if counter.deadline is None:
        counter.deadline = deadline
    return counter


def _match_atom_against_row(
    atom: RelationAtom, row: Tuple[Value, ...], binding: Binding
) -> Optional[Binding]:
    """Try to extend ``binding`` so that ``atom`` matches ``row``.

    Returns the extended binding, or ``None`` when the row is incompatible.
    """
    extension: Binding = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = binding.get(term.name, extension.get(term.name, _UNBOUND))
            if bound is _UNBOUND:
                extension[term.name] = value
            elif bound != value:
                return None
    if not extension:
        return dict(binding)
    merged = dict(binding)
    merged.update(extension)
    return merged


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _ready_comparisons(
    comparisons: Sequence[Comparison], binding: Binding, checked: set
) -> Optional[bool]:
    """Check all comparisons whose variables are fully bound.

    Returns ``False`` as soon as one fails, ``True`` otherwise; indices of the
    newly checked comparisons are added to ``checked``.
    """
    for index, comparison in enumerate(comparisons):
        if index in checked:
            continue
        if comparison.is_ground_under(binding):
            checked.add(index)
            if not comparison.evaluate(binding):
                return False
    return True


def _unsafe_comparison_error(
    comparisons: Sequence[Comparison], unresolved: Iterable[int]
) -> EvaluationError:
    names = [str(comparisons[index]) for index in unresolved]
    return EvaluationError(
        "comparisons with variables not bound by any relation atom: " + ", ".join(names)
    )


def _columnar_match(relation, atom: RelationAtom, binding: Binding):
    """The rows of ``relation`` matching ``atom``, via the columnar encoding.

    Returns ``None`` to decline — no encoding, or equality classes the exact-
    typed kernels cannot answer faithfully (cross-family numerics, values
    outside the encoded families) — in which case the caller runs the
    reference row-matcher scan.  A non-``None`` result is *exact* for the
    encoded families, and every surfaced row is still re-checked by the
    executor's row matcher, so the kernel can only ever prune.
    """
    get_encoding = getattr(relation, "columnar", None)
    encoding = get_encoding() if get_encoding is not None else None
    if encoding is None:
        return None
    const_eqs: List[Tuple[int, Value]] = []
    pair_eqs: List[Tuple[int, int]] = []
    first_position: Dict[str, int] = {}
    for position, term in enumerate(atom.terms):
        if isinstance(term, Const):
            const_eqs.append((position, term.value))
        elif term.name in binding:
            const_eqs.append((position, binding[term.name]))
        elif term.name in first_position:
            pair_eqs.append((first_position[term.name], position))
        else:
            first_position[term.name] = position
    return encoding.match_rows(const_eqs, pair_eqs)


def _semijoin_reduce(
    lookup, plan: JoinPlan, binding: Binding, use_columnar: bool = False
) -> Tuple[Dict[int, Tuple[Row, ...]], Dict[int, FrozenSet[Row]], Dict[int, Dict]]:
    """The two Yannakakis semi-join passes over the plan's join tree.

    Materialises, per step, the rows matching the atom under the initial
    binding, then filters dangling rows bottom-up (parent ⋉ child, in
    ear-removal order) and top-down (child ⋉ parent, in reverse).  The result
    is a superset of every row that participates in some answer — scan steps
    iterate it instead of the relation, probe steps probe an ephemeral hash
    index over it (built here, so per-node work stays proportional to the
    *reduced* matches), range steps intersect with it.

    With ``use_columnar`` the per-step materialisation pass runs as a
    vectorized :meth:`ColumnarRelation.match_rows` kernel where the encoding
    can serve it exactly, falling back to the reference row-matcher scan per
    step where it declines.
    """
    steps = plan.steps
    rows_per_step: List[List[Row]] = []
    var_positions: List[Dict[str, int]] = []
    for step in steps:
        relation = lookup(step.atom.relation)
        matched = (
            _columnar_match(relation, step.atom, binding) if use_columnar else None
        )
        if matched is None:
            matched = [
                row
                for row in relation
                if _match_atom_against_row(step.atom, row, binding) is not None
            ]
        rows_per_step.append(list(matched))
        positions: Dict[str, int] = {}
        for position, term in enumerate(step.atom.terms):
            if isinstance(term, Var) and term.name not in positions:
                positions[term.name] = position
        var_positions.append(positions)

    def semijoin(target: int, source: int, shared: Tuple[str, ...]) -> None:
        source_positions = var_positions[source]
        target_positions = var_positions[target]
        keys = {
            tuple(row[source_positions[name]] for name in shared)
            for row in rows_per_step[source]
        }
        rows_per_step[target] = [
            row
            for row in rows_per_step[target]
            if tuple(row[target_positions[name]] for name in shared) in keys
        ]

    for child, parent, shared in plan.semijoin_tree:  # bottom-up: parent ⋉ child
        if parent >= 0 and shared:
            semijoin(parent, child, shared)
    for child, parent, shared in reversed(plan.semijoin_tree):  # top-down: child ⋉ parent
        if parent >= 0 and shared:
            semijoin(child, parent, shared)
    reduced_rows = {index: tuple(rows) for index, rows in enumerate(rows_per_step)}
    reduced_sets = {index: frozenset(rows) for index, rows in enumerate(rows_per_step)}
    reduced_probes: Dict[int, Dict] = {}
    for index, step in enumerate(steps):
        if not step.probe_positions:
            continue
        buckets: Dict[Tuple[Value, ...], Tuple[Row, ...]] = {}
        for row in rows_per_step[index]:
            key = tuple(row[position] for position in step.probe_positions)
            buckets[key] = buckets.get(key, ()) + (row,)
        reduced_probes[index] = buckets
    return reduced_rows, reduced_sets, reduced_probes


def _multiway_state(lookup, multiway: PlannedMultiway):
    """Per-atom trie nodes after the constant descent, or ``None`` to decline.

    ``None`` means some trie cannot serve the step (a dead mixed-type trie,
    or a relation-like view without tries) and the caller must fall back to
    the binary steps.  Otherwise returns ``(roots, relations, empty)`` where
    ``empty`` flags an atom whose constant prefix matches no row — the whole
    conjunction has no answers.
    """
    roots = []
    relations = []
    empty = False
    for matom in multiway.atoms:
        relation = lookup(matom.atom.relation)
        if not matom.trie_positions:
            # A nullary atom has no positions to index: it is a pure
            # membership test — the relation either holds the empty tuple or
            # the conjunction has no answers.  It participates at no level.
            if len(relation) == 0:
                empty = True
            roots.append(None)
            relations.append(relation)
            continue
        index_on = getattr(relation, "trie_index_on", None)
        if index_on is None:
            return None
        trie = index_on(matom.trie_positions)
        if not trie.ok:
            return None
        node = trie.root
        for value in matom.const_values:
            node = node.child(value)
            if node is None:
                empty = True
                break
        roots.append(node)
        relations.append(relation)
    return roots, relations, empty


def _execute_multiway(
    plan: JoinPlan,
    binding: Binding,
    counter: Optional[StepCounter],
    roots: List,
    relations: List[Relation],
    metrics_acc: Optional[List[int]] = None,
    step_profile=None,
) -> Iterator[Binding]:
    """The unified-iterator leapfrog branch: resolve one variable per level.

    At every level the candidates for the variable are the leapfrog
    intersection of the current trie levels of the atoms containing it
    (a pre-bound variable is its own singleton candidate); a surviving
    candidate advances each participating trie through the variable's levels
    — repeated occurrences (``R(x, x)``) descend twice with the same value —
    and a full-depth path is a complete binding whose matching row in every
    relation exists by construction.  Ticks mirror the binary branch: one
    per search node entered plus one per candidate value considered.
    """
    multiway = plan.multiway
    assert multiway is not None
    comparisons = plan.comparisons
    var_order = multiway.var_order
    level_of = {name: level for level, name in enumerate(var_order)}
    participants: List[List[Tuple[int, int]]] = [[] for _ in var_order]
    for atom_index, matom in enumerate(multiway.atoms):
        for name, count in matom.var_levels:
            participants[level_of[name]].append((atom_index, count))
    nodes = list(roots)
    versions = [relation.version for relation in relations]

    def check_versions() -> None:
        for relation, version in zip(relations, versions):
            if relation.version != version:
                raise EvaluationError(
                    f"relation {relation.name!r} was mutated during evaluation"
                )

    if step_profile is not None:
        step_profile.mode(var_order)

    def descend(level: int) -> Iterator[Binding]:
        if counter is not None:
            counter.tick()
        if metrics_acc is not None:
            metrics_acc[2] += 1
        check_versions()
        for index in multiway.comparison_schedule[level]:
            if not comparisons[index].evaluate(binding):
                return
        if level == len(var_order):
            if plan.unresolved_comparisons:
                # Some comparison still has unbound variables: unsafe query.
                raise _unsafe_comparison_error(comparisons, plan.unresolved_comparisons)
            yield dict(binding)
            return
        name = var_order[level]
        group = participants[level]
        pre_bound = binding.get(name, _UNBOUND)
        if pre_bound is not _UNBOUND:
            candidates: Iterable[Value] = (pre_bound,)
        else:
            candidates = leapfrog_intersect([nodes[ai] for ai, _ in group])
        saved = [nodes[ai] for ai, _ in group]
        try:
            for value in candidates:
                if counter is not None:
                    counter.tick()
                if metrics_acc is not None:
                    metrics_acc[1] += 1  # trie candidates are index-surfaced
                if step_profile is not None:
                    step_profile.level_candidate(level)
                check_versions()
                children = []
                for ai, count in group:
                    node = nodes[ai]
                    for _ in range(count):
                        node = node.child(value)
                        if node is None:
                            break
                    if node is None:
                        break
                    children.append(node)
                if len(children) != len(group):
                    continue
                if step_profile is not None:
                    step_profile.level_match(level)
                for (ai, _), child in zip(group, children):
                    nodes[ai] = child
                binding[name] = value
                yield from descend(level + 1)
                for (ai, _), previous in zip(group, saved):
                    nodes[ai] = previous
        finally:
            if pre_bound is _UNBOUND:
                binding.pop(name, None)
            else:
                binding[name] = pre_bound

    yield from descend(0)


def enumerate_bindings(
    database: Database,
    relation_atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison] = (),
    initial_binding: Optional[Mapping[str, Value]] = None,
    counter: Optional[StepCounter] = None,
    extra_relations: Optional[Mapping[str, Relation]] = None,
    plan: Optional[JoinPlan] = None,
    *,
    use_statistics: Optional[bool] = None,
    use_semijoin: Optional[bool] = None,
    use_range_probes: Optional[bool] = None,
    use_multiway: Optional[bool] = None,
    use_snapshot_overlay: Optional[bool] = None,
    use_columnar: Optional[bool] = None,
    step_profile=None,
) -> Iterator[Binding]:
    """Yield every binding satisfying all atoms, via an indexed join plan.

    Parameters
    ----------
    database:
        The database providing the extensional relations.
    relation_atoms, comparisons:
        The conjunction to satisfy.
    initial_binding:
        Pre-bound variables (used by Datalog semi-naive evaluation and by the
        FO evaluator when descending under quantifiers).
    counter:
        Optional :class:`StepCounter` resource guard.
    extra_relations:
        Relations overriding / extending the database by name (used for IDB
        predicates and for the answer relation ``RQ`` in compatibility
        checks).
    plan:
        A precompiled :class:`~repro.queries.plan.JoinPlan` for this
        conjunction.  When omitted, one is served from the plan cache, costed
        with the relations' current statistics; callers evaluating the same
        conjunction with the same pre-bound variable *names* many times may
        compile once and pass it in.
    use_statistics, use_semijoin, use_range_probes, use_multiway:
        Differential/benchmark axes.  ``None`` (the default) means automatic:
        statistics are gathered when every relation provides them, range
        probes are compiled, the semi-join reduction follows the planner's
        cost-based verdict, and cyclic conjunctions run the worst-case-optimal
        leapfrog branch when the planner's AGM-vs-worst-case verdict favours
        it (both verdicts suppressed under an ``initial_binding`` — the delta
        rules' seeded evaluations must stay O(|Δ|), never O(|D|)).  ``False``
        disables an axis outright (all four ``False`` reproduces the
        statistics-blind PR 1 planner; ``use_multiway=False`` alone is
        exactly the PR 4 binary planner); ``use_semijoin=True`` forces the
        reduction whenever the conjunction is acyclic, ``use_multiway=True``
        forces the leapfrog branch whenever the plan compiled one (cyclic
        conjunction with statistics), with a pre-bound variable acting as its
        own singleton candidate.  None of the axes can change answers, only
        cost — the differential suite pins this.  (On malformed data with
        ``TypeError``-raising mixed-type comparisons the surfaced error may
        differ by axis, since join order, semi-join pruning and the variable
        elimination order decide which rows ever reach a comparison; see
        :mod:`repro.queries.plan`.  The multiway access paths themselves
        never widen this: a mixed-type trie declines and the binary steps
        take over.)
    use_snapshot_overlay:
        The snapshot-isolation axis (PR 6).  ``True`` pins a fresh
        :class:`~repro.relational.database.DatabaseSnapshot` of ``database``
        at entry and enumerates against it, so a concurrent writer committing
        deltas mid-enumeration can never be observed (answers are as of the
        entry epoch); ``extra_relations`` still overlay the pinned view by
        name, which is how the ``Qc`` overlay probe works.  ``None`` (the
        default) and ``False`` evaluate against ``database`` exactly as
        before — the PR 5 reference behaviour, where a mid-enumeration
        mutation raises :class:`~repro.relational.errors.EvaluationError` —
        and passing a snapshot *as* the database is already pinned under
        every setting.  Like the planner axes, the knob can never change
        answers on a quiescent database, only which epoch a racing
        enumeration observes.
    use_columnar:
        The vectorized-kernel axis (PR 10).  ``None`` (the default) follows
        the planner's cost verdict (:attr:`JoinPlan.run_columnar`),
        suppressed under an ``initial_binding`` exactly like the semi-join
        and multiway verdicts; ``True`` forces the columnar access path
        wherever a step compiled pushdowns; ``False`` disables it outright
        *and* compiles the plan without columnar pushdowns, reproducing the
        pre-columnar plan and execution byte-for-byte.  The kernels surface
        supersets re-checked by the row matcher — or decline to the tuple-set
        reference path — so like every other axis the knob changes cost,
        never answers.
    step_profile:
        Optional per-step actuals collector for EXPLAIN ANALYZE
        (:class:`repro.observability.explain.StepProfile`, duck-typed).  Pure
        observation — candidates, matches and access kinds per plan step —
        and never consulted for any decision, so a profiled run enumerates
        exactly the same bindings.
    """
    counter = _deadline_guarded(counter)
    if use_snapshot_overlay:
        pin = getattr(database, "snapshot", None)
        if pin is not None:
            database = pin()
    extra_relations = extra_relations or {}

    def lookup(name: str) -> Relation:
        if name in extra_relations:
            return extra_relations[name]
        return database.relation(name)

    # Fail fast on unknown relations so that errors surface deterministically.
    for atom in relation_atoms:
        lookup(atom.relation)

    base_binding: Binding = dict(initial_binding or {})
    if plan is None:
        pspan = _tracing.begin("plan")
        try:
            statistics = None
            if use_statistics is not False:
                statistics = {}
                for atom in relation_atoms:
                    getter = getattr(lookup(atom.relation), "statistics", None)
                    if getter is None:
                        statistics = None
                        break
                    statistics[atom.relation] = getter()
            plan = cached_plan(
                tuple(relation_atoms),
                tuple(comparisons),
                frozenset(base_binding),
                statistics=statistics,
                compile_ranges=use_range_probes is not False,
                compile_columnar=use_columnar is not False,
                # Snapshots carry a (source, epoch) component so readers pinned
                # to one epoch share compiled plans without colliding across
                # epochs; the live database contributes None (unchanged keying).
                epoch=getattr(database, "plan_epoch", None),
            )
        finally:
            _tracing.finish(pspan)
    planned_comparisons = plan.comparisons
    steps = plan.steps

    # Metrics are accumulated into plain local integers and flushed once per
    # enumeration (in the try/finally wrappers below), so the active registry's
    # lock is taken a constant number of times per evaluation — never per row.
    active = _metrics._ACTIVE
    metrics_acc: Optional[List[int]] = [0, 0, 0, 0, 0] if active is not None else None

    def _flush_metrics() -> None:
        if metrics_acc is not None:
            active.inc_many(
                (
                    ("executor.rows.scanned", metrics_acc[0]),
                    ("executor.rows.probed", metrics_acc[1]),
                    ("executor.steps", metrics_acc[2]),
                    ("columnar.kernel.selects", metrics_acc[3]),
                    ("columnar.rows.selected", metrics_acc[4]),
                )
            )

    if use_multiway is None:
        # Auto: follow the planner's AGM-vs-worst-case verdict, suppressed
        # under an initial binding — the delta rules' seeded evaluations must
        # stay O(|Δ|), and a seeded leapfrog re-walks whole tries.
        run_multiway = plan.run_multiway and not base_binding
    else:
        run_multiway = bool(use_multiway) and plan.multiway is not None
    if run_multiway:
        state = _multiway_state(lookup, plan.multiway)
        if state is None:
            run_multiway = False  # a trie declined: the binary steps take over
        else:
            roots, multiway_relations, multiway_empty = state
            if multiway_empty:
                # A constant prefix matched no row: no answers.  Still
                # evaluate the comparisons ground under the initial binding
                # alone, exactly as the binary root node does before touching
                # any rows — so a TypeError the reference path raises at the
                # root is not silently swallowed into an empty result.
                for index in plan.multiway.comparison_schedule[0]:
                    plan.comparisons[index].evaluate(base_binding)
                return
            try:
                yield from _execute_multiway(
                    plan,
                    dict(base_binding),
                    counter,
                    roots,
                    multiway_relations,
                    metrics_acc,
                    step_profile,
                )
            finally:
                _flush_metrics()
            return

    if use_columnar is None:
        # Auto: follow the planner's cost verdict, suppressed under an
        # initial binding — the delta rules' seeded evaluations must stay
        # O(|Δ|), and a columnar kernel always touches whole columns.
        run_columnar = plan.run_columnar and not base_binding
    else:
        run_columnar = bool(use_columnar)

    if use_semijoin is None:
        run_semijoin = plan.run_semijoin and not base_binding
    else:
        run_semijoin = use_semijoin
    reduced_rows: Optional[Dict[int, Tuple[Row, ...]]] = None
    reduced_sets: Optional[Dict[int, FrozenSet[Row]]] = None
    reduced_probes: Optional[Dict[int, Dict]] = None
    if run_semijoin and plan.semijoin_tree:
        reduced_rows, reduced_sets, reduced_probes = _semijoin_reduce(
            lookup, plan, base_binding, run_columnar
        )

    def execute(depth: int, binding: Binding) -> Iterator[Binding]:
        if counter is not None:
            counter.tick()
        if metrics_acc is not None:
            metrics_acc[2] += 1
        for index in plan.comparison_schedule[depth]:
            if not planned_comparisons[index].evaluate(binding):
                return
        if depth == len(steps):
            if plan.unresolved_comparisons:
                # Some comparison still has unbound variables: unsafe query.
                raise _unsafe_comparison_error(planned_comparisons, plan.unresolved_comparisons)
            yield dict(binding)
            return
        step = steps[depth]
        relation = lookup(step.atom.relation)
        columnar_rows: Optional[Tuple[Row, ...]] = None
        if (
            run_columnar
            and step.columnar_pushdowns
            and not step.uses_index
            and reduced_rows is None
        ):
            get_encoding = getattr(relation, "columnar", None)
            encoding = get_encoding() if get_encoding is not None else None
            if encoding is not None:
                # The kernel answers every pushed-down comparison in one
                # vectorized pass; a ``None`` result is a decline (the
                # encoding cannot evaluate some predicate exactly) and the
                # range/scan paths below take over.  Surfaced rows are a
                # superset of the matches — the comparisons stay in the
                # schedule and the row matcher still re-checks each row.
                columnar_rows = encoding.select(
                    [
                        (planned.position, planned.op.value, planned.bound_value(binding))
                        for planned in step.columnar_pushdowns
                    ]
                )
        if step.uses_index:
            if reduced_probes is not None:
                rows: Iterable[Tuple[Value, ...]] = reduced_probes[depth].get(
                    step.probe_key(binding), ()
                )
                access_kind = "reduced-probe"
            else:
                rows = relation.probe(step.probe_positions, step.probe_key(binding))
                access_kind = "probe"
        elif columnar_rows is not None:
            rows = columnar_rows
            access_kind = "columnar"
            if metrics_acc is not None:
                metrics_acc[3] += 1
                metrics_acc[4] += len(columnar_rows)
        elif step.range_probe is not None:
            probe = step.range_probe
            range_rows = getattr(relation, "range_rows", None)
            ranged = (
                range_rows(probe.position, probe.op.value, probe.bound_value(binding))
                if range_rows is not None
                else None
            )
            if ranged is None:
                # The sorted index cannot answer exactly: fall back to the scan
                # (or its semi-join-reduced row set), preserving semantics.
                rows = reduced_rows[depth] if reduced_rows is not None else relation
                access_kind = "reduced-scan" if reduced_rows is not None else "scan"
            elif reduced_sets is not None:
                keep = reduced_sets[depth]
                rows = tuple(row for row in ranged if row in keep)
                access_kind = "reduced-range"
            else:
                rows = ranged
                access_kind = "range"
        elif reduced_rows is not None:
            rows = reduced_rows[depth]
            access_kind = "reduced-scan"
        else:
            rows = relation
            access_kind = "scan"
        if step_profile is not None:
            step_profile.access(depth, access_kind)
        probed = step.uses_index
        # A full scan iterates the live row set, so mutating the relation while
        # this generator is suspended raises the usual RuntimeError; the index
        # probe (and any reduced/ranged row set) iterates a frozen sequence, so
        # check the version explicitly to fail just as loudly instead of mixing
        # pre- and post-mutation states.
        version = relation.version
        for row in rows:
            if relation.version != version:
                raise EvaluationError(
                    f"relation {relation.name!r} was mutated during evaluation"
                )
            if counter is not None:
                counter.tick()
            if metrics_acc is not None:
                metrics_acc[1 if probed else 0] += 1
            if step_profile is not None:
                step_profile.candidate(depth)
            extended = _match_atom_against_row(step.atom, row, binding)
            if extended is None:
                continue
            if step_profile is not None:
                step_profile.match(depth)
            yield from execute(depth + 1, extended)

    try:
        yield from execute(0, base_binding)
    finally:
        _flush_metrics()


def enumerate_bindings_naive(
    database: Database,
    relation_atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison] = (),
    initial_binding: Optional[Mapping[str, Value]] = None,
    counter: Optional[StepCounter] = None,
    extra_relations: Optional[Mapping[str, Relation]] = None,
) -> Iterator[Binding]:
    """The historical backtracking evaluator: dynamic atom choice, full scans.

    Semantically identical to :func:`enumerate_bindings`; kept as the reference
    path for the differential test harness and as the baseline the evaluator
    benchmark measures the indexed path against.  Takes the same parameters
    except for ``plan`` (it never plans).
    """
    counter = _deadline_guarded(counter)
    extra_relations = extra_relations or {}

    def lookup(name: str) -> Relation:
        if name in extra_relations:
            return extra_relations[name]
        return database.relation(name)

    # Fail fast on unknown relations so that errors surface deterministically.
    for atom in relation_atoms:
        lookup(atom.relation)

    base_binding: Binding = dict(initial_binding or {})
    comparisons = list(comparisons)

    def backtrack(remaining: List[RelationAtom], binding: Binding, checked: set) -> Iterator[Binding]:
        if counter is not None:
            counter.tick()
        status = _ready_comparisons(comparisons, binding, checked)
        if status is False:
            return
        if not remaining:
            if len(checked) != len(comparisons):
                # Some comparison still has unbound variables: unsafe query.
                raise _unsafe_comparison_error(
                    comparisons,
                    (i for i in range(len(comparisons)) if i not in checked),
                )
            yield dict(binding)
            return
        index = most_constrained_index(remaining, binding)
        atom = remaining[index]
        rest = remaining[:index] + remaining[index + 1 :]
        for row in lookup(atom.relation):
            if counter is not None:
                counter.tick()
            extended = _match_atom_against_row(atom, row, binding)
            if extended is None:
                continue
            yield from backtrack(rest, extended, set(checked))

    yield from backtrack(list(relation_atoms), base_binding, set())


def project_binding(binding: Mapping[str, Value], head: Sequence[Term]) -> Tuple[Value, ...]:
    """Instantiate a head term list under a binding."""
    values: List[Value] = []
    for term in head:
        if isinstance(term, Const):
            values.append(term.value)
        else:
            if term.name not in binding:
                raise EvaluationError(f"unsafe head variable: {term.name!r} is not bound")
            values.append(binding[term.name])
    return tuple(values)
