"""Backtracking evaluation of conjunctions of atoms.

This is the work-horse shared by conjunctive queries, union of conjunctive
queries, positive-existential queries (per disjunct) and Datalog rule bodies:
given a list of relation atoms and comparisons, enumerate all bindings of the
variables that satisfy every atom against a database.

The search orders relation atoms greedily by the number of already-bound
variables (most-constrained first) and checks comparison predicates as soon as
all of their variables are bound, which prunes the search early for the
heavily-constrained queries produced by the hardness reductions.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.queries.ast import Comparison, Const, RelationAtom, Term, Var
from repro.relational.database import Database, Relation
from repro.relational.errors import EvaluationError, UnknownRelationError
from repro.relational.schema import Value

Binding = Dict[str, Value]


class StepCounter:
    """Optional guard limiting the number of search steps of an evaluation.

    The hardness reductions intentionally create exponential searches; the
    benchmark harness uses a counter both to abort runaway configurations and
    to report the number of explored nodes as a machine-independent cost
    measure.
    """

    def __init__(self, limit: Optional[int] = None) -> None:
        self.limit = limit
        self.steps = 0

    def tick(self, amount: int = 1) -> None:
        self.steps += amount
        if self.limit is not None and self.steps > self.limit:
            raise EvaluationError(
                f"evaluation exceeded the step limit of {self.limit} search steps"
            )


def _match_atom_against_row(
    atom: RelationAtom, row: Tuple[Value, ...], binding: Binding
) -> Optional[Binding]:
    """Try to extend ``binding`` so that ``atom`` matches ``row``.

    Returns the extended binding, or ``None`` when the row is incompatible.
    """
    extension: Binding = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Const):
            if term.value != value:
                return None
        else:
            bound = binding.get(term.name, extension.get(term.name, _UNBOUND))
            if bound is _UNBOUND:
                extension[term.name] = value
            elif bound != value:
                return None
    if not extension:
        return dict(binding)
    merged = dict(binding)
    merged.update(extension)
    return merged


class _Unbound:
    __slots__ = ()


_UNBOUND = _Unbound()


def _ready_comparisons(
    comparisons: Sequence[Comparison], binding: Binding, checked: set
) -> Optional[bool]:
    """Check all comparisons whose variables are fully bound.

    Returns ``False`` as soon as one fails, ``True`` otherwise; indices of the
    newly checked comparisons are added to ``checked``.
    """
    for index, comparison in enumerate(comparisons):
        if index in checked:
            continue
        if comparison.is_ground_under(binding):
            checked.add(index)
            if not comparison.evaluate(binding):
                return False
    return True


def _choose_next_atom(
    remaining: List[RelationAtom], binding: Binding
) -> int:
    """Index of the most-constrained remaining atom (most bound variables)."""
    best_index = 0
    best_score = -1
    for index, atom in enumerate(remaining):
        score = 0
        for term in atom.terms:
            if isinstance(term, Const) or term.name in binding:
                score += 1
        if score > best_score:
            best_score = score
            best_index = index
    return best_index


def enumerate_bindings(
    database: Database,
    relation_atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison] = (),
    initial_binding: Optional[Mapping[str, Value]] = None,
    counter: Optional[StepCounter] = None,
    extra_relations: Optional[Mapping[str, Relation]] = None,
) -> Iterator[Binding]:
    """Yield every binding satisfying all atoms.

    Parameters
    ----------
    database:
        The database providing the extensional relations.
    relation_atoms, comparisons:
        The conjunction to satisfy.
    initial_binding:
        Pre-bound variables (used by Datalog semi-naive evaluation and by the
        FO evaluator when descending under quantifiers).
    counter:
        Optional :class:`StepCounter` resource guard.
    extra_relations:
        Relations overriding / extending the database by name (used for IDB
        predicates and for the answer relation ``RQ`` in compatibility
        checks).
    """
    extra_relations = extra_relations or {}

    def lookup(name: str) -> Relation:
        if name in extra_relations:
            return extra_relations[name]
        return database.relation(name)

    # Fail fast on unknown relations so that errors surface deterministically.
    for atom in relation_atoms:
        lookup(atom.relation)

    base_binding: Binding = dict(initial_binding or {})
    comparisons = list(comparisons)

    def backtrack(remaining: List[RelationAtom], binding: Binding, checked: set) -> Iterator[Binding]:
        if counter is not None:
            counter.tick()
        status = _ready_comparisons(comparisons, binding, checked)
        if status is False:
            return
        if not remaining:
            if len(checked) != len(comparisons):
                # Some comparison still has unbound variables: unsafe query.
                unresolved = [
                    str(comparisons[i]) for i in range(len(comparisons)) if i not in checked
                ]
                raise EvaluationError(
                    "comparisons with variables not bound by any relation atom: "
                    + ", ".join(unresolved)
                )
            yield dict(binding)
            return
        index = _choose_next_atom(remaining, binding)
        atom = remaining[index]
        rest = remaining[:index] + remaining[index + 1 :]
        for row in lookup(atom.relation):
            if counter is not None:
                counter.tick()
            extended = _match_atom_against_row(atom, row, binding)
            if extended is None:
                continue
            yield from backtrack(rest, extended, set(checked))

    yield from backtrack(list(relation_atoms), base_binding, set())


def project_binding(binding: Mapping[str, Value], head: Sequence[Term]) -> Tuple[Value, ...]:
    """Instantiate a head term list under a binding."""
    values: List[Value] = []
    for term in head:
        if isinstance(term, Const):
            values.append(term.value)
        else:
            if term.name not in binding:
                raise EvaluationError(f"unsafe head variable: {term.name!r} is not bound")
            values.append(binding[term.name])
    return tuple(values)
