"""A small textual syntax for conjunctive queries and Datalog programs.

The syntax is the usual rule notation::

    Q(x, y) :- flight(x, 'edi', y, p), p < 300, x != y.
    reach(x, y) :- edge(x, y).
    reach(x, z) :- reach(x, y), edge(y, z).

* Identifiers starting with a lower-case letter that appear in argument
  positions are variables; quoted strings and numbers are constants.
* ``:-`` separates head and body; atoms and comparisons are comma-separated;
  the trailing period is optional.
* :func:`parse_rule` returns a single rule; :func:`parse_program` parses many
  rules into a (non-)recursive Datalog program; :func:`parse_cq` interprets a
  single rule as a conjunctive query.

The parser is intentionally small — it exists so examples and tests can state
queries readably, not to be a full Datalog front end.
"""

from __future__ import annotations

import re
from typing import List, Sequence, Tuple, Union

from repro.queries.ast import Comparison, ComparisonOp, Const, RelationAtom, Term, Var
from repro.queries.cq import ConjunctiveQuery
from repro.queries.datalog import DatalogProgram, DatalogRule, NonRecursiveDatalogProgram
from repro.relational.errors import QueryError

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<implies>:-)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<comma>,)
  | (?P<period>\.)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryError(f"cannot tokenise query text at: {text[position:position + 20]!r}")
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        tokens.append((kind, match.group()))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token helpers ----------------------------------------------------------
    def _peek(self) -> Tuple[str, str]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return ("eof", "")

    def _next(self) -> Tuple[str, str]:
        token = self._peek()
        self._index += 1
        return token

    def _expect(self, kind: str) -> str:
        token_kind, value = self._next()
        if token_kind != kind:
            raise QueryError(f"expected {kind} but found {value!r}")
        return value

    def at_end(self) -> bool:
        return self._peek()[0] == "eof"

    # -- grammar -------------------------------------------------------------------
    def parse_term(self) -> Term:
        kind, value = self._next()
        if kind == "ident":
            return Var(value)
        if kind == "number":
            return Const(float(value) if "." in value else int(value))
        if kind == "string":
            return Const(value[1:-1])
        raise QueryError(f"expected a term but found {value!r}")

    def parse_atom_or_comparison(self) -> Union[RelationAtom, Comparison]:
        kind, value = self._peek()
        if kind == "ident" and self._index + 1 < len(self._tokens) and self._tokens[self._index + 1][0] == "lpar":
            return self.parse_relation_atom()
        left = self.parse_term()
        op = ComparisonOp.from_symbol(self._expect("op"))
        right = self.parse_term()
        return Comparison(op, left, right)

    def parse_relation_atom(self) -> RelationAtom:
        name = self._expect("ident")
        self._expect("lpar")
        terms: List[Term] = []
        if self._peek()[0] != "rpar":
            terms.append(self.parse_term())
            while self._peek()[0] == "comma":
                self._next()
                terms.append(self.parse_term())
        self._expect("rpar")
        return RelationAtom(name, terms)

    def parse_rule(self) -> DatalogRule:
        head = self.parse_relation_atom()
        body: List[RelationAtom] = []
        comparisons: List[Comparison] = []
        if self._peek()[0] == "implies":
            self._next()
            literal = self.parse_atom_or_comparison()
            self._append(literal, body, comparisons)
            while self._peek()[0] == "comma":
                self._next()
                literal = self.parse_atom_or_comparison()
                self._append(literal, body, comparisons)
        if self._peek()[0] == "period":
            self._next()
        return DatalogRule(head, body, comparisons)

    @staticmethod
    def _append(
        literal: Union[RelationAtom, Comparison],
        body: List[RelationAtom],
        comparisons: List[Comparison],
    ) -> None:
        if isinstance(literal, RelationAtom):
            body.append(literal)
        else:
            comparisons.append(literal)


def parse_rule(text: str) -> DatalogRule:
    """Parse a single Datalog rule."""
    parser = _Parser(text)
    rule = parser.parse_rule()
    if not parser.at_end():
        raise QueryError(f"unexpected trailing tokens in rule: {text!r}")
    return rule


def parse_cq(text: str, name: str = "Q") -> ConjunctiveQuery:
    """Parse a single rule and interpret it as a conjunctive query."""
    rule = parse_rule(text)
    return ConjunctiveQuery(rule.head.terms, rule.body, rule.comparisons, name=name)


def parse_program(text: str, output: str, name: str = "Q") -> DatalogProgram:
    """Parse a multi-rule program; returns the non-recursive class when acyclic."""
    parser = _Parser(text)
    rules: List[DatalogRule] = []
    while not parser.at_end():
        rules.append(parser.parse_rule())
    program = DatalogProgram(rules, output, name=name)
    if not program.is_recursive():
        return NonRecursiveDatalogProgram(rules, output, name=name)
    return program
