"""The query-language lattice of the paper.

``CQ ⊆ UCQ ⊆ ∃FO+ ⊆ FO`` and ``DATALOG_nr ⊆ DATALOG``; ``DATALOG_nr`` also
contains UCQ, and SP ⊆ CQ.  The enumeration is used to parameterise the
recommendation problems (``RPP(LQ)`` etc.), to key the paper's complexity
tables, and to classify concrete query objects.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple


class QueryLanguage(Enum):
    """Languages LQ considered by the paper (plus the SP/identity fragments)."""

    SP = "SP"
    CQ = "CQ"
    UCQ = "UCQ"
    EFO_PLUS = "∃FO+"
    DATALOG_NR = "DATALOG_nr"
    FO = "FO"
    DATALOG = "DATALOG"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_existential_positive(self) -> bool:
        """Whether the language is contained in ∃FO+ (CQ, UCQ, ∃FO+, SP)."""
        return self in (
            QueryLanguage.SP,
            QueryLanguage.CQ,
            QueryLanguage.UCQ,
            QueryLanguage.EFO_PLUS,
        )

    @property
    def has_ptime_membership_combined(self) -> bool:
        """Whether the *combined* complexity of membership ``t ∈ Q(D)`` is PTIME.

        Among the languages of the paper only SP (and other
        selection/projection fragments) enjoy this; it is the hinge of
        Corollary 6.2.
        """
        return self is QueryLanguage.SP

    def subsumes(self, other: "QueryLanguage") -> bool:
        """Language containment ``other ⊆ self`` in the paper's lattice."""
        return other in _CONTAINED_IN[self]


_CONTAINED_IN = {
    QueryLanguage.SP: {QueryLanguage.SP},
    QueryLanguage.CQ: {QueryLanguage.SP, QueryLanguage.CQ},
    QueryLanguage.UCQ: {QueryLanguage.SP, QueryLanguage.CQ, QueryLanguage.UCQ},
    QueryLanguage.EFO_PLUS: {
        QueryLanguage.SP,
        QueryLanguage.CQ,
        QueryLanguage.UCQ,
        QueryLanguage.EFO_PLUS,
    },
    QueryLanguage.DATALOG_NR: {
        QueryLanguage.SP,
        QueryLanguage.CQ,
        QueryLanguage.UCQ,
        QueryLanguage.EFO_PLUS,
        QueryLanguage.DATALOG_NR,
    },
    QueryLanguage.FO: {
        QueryLanguage.SP,
        QueryLanguage.CQ,
        QueryLanguage.UCQ,
        QueryLanguage.EFO_PLUS,
        QueryLanguage.FO,
    },
    QueryLanguage.DATALOG: {
        QueryLanguage.SP,
        QueryLanguage.CQ,
        QueryLanguage.UCQ,
        QueryLanguage.EFO_PLUS,
        QueryLanguage.DATALOG_NR,
        QueryLanguage.DATALOG,
    },
}

#: The three language groups that share one complexity cell in Tables 8.1/8.2.
CQ_GROUP: Tuple[QueryLanguage, ...] = (
    QueryLanguage.CQ,
    QueryLanguage.UCQ,
    QueryLanguage.EFO_PLUS,
)
FO_GROUP: Tuple[QueryLanguage, ...] = (QueryLanguage.DATALOG_NR, QueryLanguage.FO)
DATALOG_GROUP: Tuple[QueryLanguage, ...] = (QueryLanguage.DATALOG,)

ALL_LANGUAGES: Tuple[QueryLanguage, ...] = (
    QueryLanguage.CQ,
    QueryLanguage.UCQ,
    QueryLanguage.EFO_PLUS,
    QueryLanguage.DATALOG_NR,
    QueryLanguage.FO,
    QueryLanguage.DATALOG,
)


def classify_query(query) -> QueryLanguage:
    """The smallest language of the lattice a query object belongs to.

    Classification is syntactic: a recursive :class:`DatalogProgram` is
    DATALOG even if its rules happen never to recurse on the given data, and a
    one-disjunct UCQ is classified as CQ.
    """
    from repro.queries.cq import ConjunctiveQuery
    from repro.queries.datalog import DatalogProgram, NonRecursiveDatalogProgram
    from repro.queries.efo import PositiveExistentialQuery
    from repro.queries.fo import FirstOrderQuery
    from repro.queries.sp import SPQuery
    from repro.queries.ucq import UnionOfConjunctiveQueries

    if isinstance(query, SPQuery):
        return QueryLanguage.SP
    if isinstance(query, ConjunctiveQuery):
        return QueryLanguage.CQ
    if isinstance(query, UnionOfConjunctiveQueries):
        if len(query.disjuncts) == 1:
            return QueryLanguage.CQ
        return QueryLanguage.UCQ
    if isinstance(query, PositiveExistentialQuery):
        return QueryLanguage.EFO_PLUS
    if isinstance(query, NonRecursiveDatalogProgram):
        return QueryLanguage.DATALOG_NR
    if isinstance(query, DatalogProgram):
        return QueryLanguage.DATALOG_NR if not query.is_recursive() else QueryLanguage.DATALOG
    if isinstance(query, FirstOrderQuery):
        return QueryLanguage.FO
    raise TypeError(f"cannot classify object of type {type(query).__name__} as a query language")
