"""Conjunctive queries (CQ).

A conjunctive query has a head of output terms and a body that is a
conjunction of relation atoms and built-in comparisons; all body variables not
in the head are implicitly existentially quantified.  This is the base
language of the paper: the running travel example, the compatibility
constraint "no more than two museums" and most hardness gadgets are CQs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.queries.ast import (
    And,
    Comparison,
    Const,
    Exists,
    Formula,
    RelationAtom,
    Term,
    Var,
    as_term,
    is_conjunctive,
)
from repro.queries.base import Query, unique_attribute_names
from repro.queries.bindings import StepCounter, enumerate_bindings, project_binding
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import QueryError
from repro.relational.schema import Value


def _head_attribute_names(head: Sequence[Term]) -> Tuple[str, ...]:
    raw = []
    for position, term in enumerate(head, start=1):
        if isinstance(term, Var):
            raw.append(term.name)
        else:
            raw.append(f"c{position}")
    return unique_attribute_names(raw)


@dataclass
class ConjunctiveQuery(Query):
    """``Q(head) = ∃ (bound vars) body-atoms``.

    Parameters
    ----------
    head:
        Output terms; variables must occur in some relation atom of the body
        (safety), constants are allowed and returned verbatim.
    atoms:
        Relation atoms of the body.
    comparisons:
        Built-in predicate atoms of the body.
    name:
        Optional human-readable query name.
    answer_name:
        Name of the answer relation ``RQ`` (referenced by compatibility
        constraints).
    """

    head: Tuple[Term, ...]
    atoms: Tuple[RelationAtom, ...]
    comparisons: Tuple[Comparison, ...] = ()
    name: str = "Q"
    answer_name: str = Query.answer_name
    #: Bindings come only from matching body atoms against their relations.
    active_domain_independent = True

    def __init__(
        self,
        head: Sequence["Term | Value"],
        atoms: Iterable[RelationAtom],
        comparisons: Iterable[Comparison] = (),
        name: str = "Q",
        answer_name: str = Query.answer_name,
    ) -> None:
        self.head = tuple(as_term(t) for t in head)
        self.atoms = tuple(atoms)
        self.comparisons = tuple(comparisons)
        self.name = name
        self.answer_name = answer_name
        self._validate_safety()

    # -- construction helpers ------------------------------------------------
    def _validate_safety(self) -> None:
        body_vars: FrozenSet[Var] = frozenset()
        for atom in self.atoms:
            body_vars |= atom.variables()
        for term in self.head:
            if isinstance(term, Var) and term not in body_vars:
                raise QueryError(
                    f"unsafe conjunctive query {self.name!r}: head variable "
                    f"{term.name!r} does not occur in any relation atom"
                )
        for comparison in self.comparisons:
            for var in comparison.variables():
                if var not in body_vars:
                    raise QueryError(
                        f"unsafe conjunctive query {self.name!r}: comparison variable "
                        f"{var.name!r} does not occur in any relation atom"
                    )

    # -- Query interface -------------------------------------------------------
    @property
    def output_attributes(self) -> Tuple[str, ...]:
        return _head_attribute_names(self.head)

    def relations_used(self) -> FrozenSet[str]:
        return frozenset(atom.relation for atom in self.atoms)

    def evaluate(
        self,
        database: Database,
        counter: Optional[StepCounter] = None,
        extra_relations=None,
    ) -> Relation:
        result = self.empty_answer()
        for binding in enumerate_bindings(
            database,
            self.atoms,
            self.comparisons,
            counter=counter,
            extra_relations=extra_relations,
        ):
            result.add(project_binding(binding, self.head))
        return result

    def is_satisfiable_on(
        self,
        database: Database,
        counter: Optional[StepCounter] = None,
        extra_relations=None,
    ) -> bool:
        """Whether ``Q(D)`` is non-empty (early exit after the first answer)."""
        for _ in enumerate_bindings(
            database,
            self.atoms,
            self.comparisons,
            counter=counter,
            extra_relations=extra_relations,
        ):
            return True
        return False

    def contains(self, database: Database, row: Row) -> bool:
        """Membership check that binds head variables before searching."""
        row = tuple(row)
        if len(row) != len(self.head):
            return False
        initial: dict = {}
        for term, value in zip(self.head, row):
            if isinstance(term, Const):
                if term.value != value:
                    return False
            else:
                if term.name in initial and initial[term.name] != value:
                    return False
                initial[term.name] = value
        for binding in enumerate_bindings(
            database, self.atoms, self.comparisons, initial_binding=initial
        ):
            return True
        return False

    # -- structural accessors ----------------------------------------------------
    def variables(self) -> FrozenSet[Var]:
        """All variables of head and body."""
        result: FrozenSet[Var] = frozenset(t for t in self.head if isinstance(t, Var))
        for atom in self.atoms:
            result |= atom.variables()
        for comparison in self.comparisons:
            result |= comparison.variables()
        return result

    def constants(self) -> Tuple[Value, ...]:
        """All constants of head and body, with duplicates."""
        values: Tuple[Value, ...] = tuple(t.value for t in self.head if isinstance(t, Const))
        for atom in self.atoms:
            values += atom.constants()
        for comparison in self.comparisons:
            values += comparison.constants()
        return values

    def body_size(self) -> int:
        """Number of body atoms, a natural size measure for scaling studies."""
        return len(self.atoms) + len(self.comparisons)

    def to_formula(self) -> Formula:
        """The body as an ∃-quantified formula (head variables stay free)."""
        body: Formula = And(*(self.atoms + self.comparisons)) if (self.atoms or self.comparisons) else And()
        head_vars = frozenset(t for t in self.head if isinstance(t, Var))
        bound = sorted(
            (v for v in self.variables() - head_vars), key=lambda v: v.name
        )
        if bound:
            return Exists(tuple(bound), body)
        return body

    def rename_answer(self, answer_name: str) -> "ConjunctiveQuery":
        """A copy with a different answer-relation name."""
        return ConjunctiveQuery(
            self.head, self.atoms, self.comparisons, name=self.name, answer_name=answer_name
        )

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        body = " ∧ ".join([str(a) for a in self.atoms] + [str(c) for c in self.comparisons])
        return f"{self.name}({head}) :- {body}"


def cq_from_formula(
    head: Sequence["Term | Value"], formula: Formula, name: str = "Q"
) -> ConjunctiveQuery:
    """Build a CQ from an ∃/∧ formula by flattening it into a list of atoms."""
    if not is_conjunctive(formula):
        raise QueryError("formula is not in the CQ fragment (only atoms, AND, EXISTS allowed)")
    atoms: list = []
    comparisons: list = []

    def collect(node: Formula) -> None:
        if isinstance(node, RelationAtom):
            atoms.append(node)
        elif isinstance(node, Comparison):
            comparisons.append(node)
        elif isinstance(node, And):
            for operand in node.operands:
                collect(operand)
        elif isinstance(node, Exists):
            collect(node.operand)
        else:  # pragma: no cover - guarded by is_conjunctive
            raise QueryError(f"unexpected node in CQ formula: {node!r}")

    collect(formula)
    return ConjunctiveQuery(head, atoms, comparisons, name=name)
