"""Datalog and non-recursive Datalog.

A program is a set of rules ``p(x̄) ← p1(x̄1), ..., pn(x̄n)`` whose head
predicates are the IDB relations; body atoms may refer to database (EDB)
relations, IDB relations and built-in comparisons.  The *dependency graph*
has the program's predicates as nodes and an edge ``(p', p)`` whenever ``p'``
occurs in the body of a rule with head ``p``; a program is non-recursive when
this graph is acyclic (Section 2 of the paper).

* :class:`DatalogProgram` evaluates by semi-naive fixpoint iteration and
  therefore supports recursion (flight connectivity, transitive prerequisite
  closure, ...).
* :class:`NonRecursiveDatalogProgram` additionally checks acyclicity and
  evaluates predicates in topological order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.queries.ast import Comparison, Const, RelationAtom, Term, Var
from repro.queries.base import Query, unique_attribute_names
from repro.queries.bindings import StepCounter, enumerate_bindings, project_binding
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import QueryError
from repro.relational.schema import RelationSchema, Value


@dataclass(frozen=True)
class DatalogRule:
    """One rule ``head ← body``."""

    head: RelationAtom
    body: Tuple[RelationAtom, ...]
    comparisons: Tuple[Comparison, ...] = ()

    def __init__(
        self,
        head: RelationAtom,
        body: Iterable[RelationAtom] = (),
        comparisons: Iterable[Comparison] = (),
    ) -> None:
        object.__setattr__(self, "head", head)
        object.__setattr__(self, "body", tuple(body))
        object.__setattr__(self, "comparisons", tuple(comparisons))
        self._validate_safety()

    def _validate_safety(self) -> None:
        body_vars: Set[Var] = set()
        for atom in self.body:
            body_vars |= atom.variables()
        for term in self.head.terms:
            if isinstance(term, Var) and term not in body_vars:
                raise QueryError(
                    f"unsafe Datalog rule: head variable {term.name!r} of "
                    f"{self.head.relation!r} does not occur in the body"
                )
        for comparison in self.comparisons:
            missing = comparison.variables() - body_vars
            if missing:
                names = ", ".join(sorted(v.name for v in missing))
                raise QueryError(
                    f"unsafe Datalog rule for {self.head.relation!r}: comparison "
                    f"variables not bound in the body: {names}"
                )

    def body_predicates(self) -> FrozenSet[str]:
        """Relation names occurring in the body."""
        return frozenset(atom.relation for atom in self.body)

    def constants(self) -> Tuple[Value, ...]:
        """All constants of the rule."""
        values = self.head.constants()
        for atom in self.body:
            values += atom.constants()
        for comparison in self.comparisons:
            values += comparison.constants()
        return values

    def __str__(self) -> str:
        body = ", ".join([str(a) for a in self.body] + [str(c) for c in self.comparisons])
        return f"{self.head} :- {body}" if body else f"{self.head}."


class DatalogProgram(Query):
    """A (possibly recursive) Datalog program with a designated output predicate."""

    #: Rule bodies join EDB/IDB atoms; no quantification over the active domain.
    active_domain_independent = True

    def __init__(
        self,
        rules: Iterable[DatalogRule],
        output: str,
        name: str = "Q",
        answer_name: str = Query.answer_name,
    ) -> None:
        self.rules: Tuple[DatalogRule, ...] = tuple(rules)
        if not self.rules:
            raise QueryError("a Datalog program needs at least one rule")
        self.output = output
        self.name = name
        self.answer_name = answer_name
        self._idb_arities: Dict[str, int] = {}
        for rule in self.rules:
            arity = rule.head.arity
            existing = self._idb_arities.get(rule.head.relation)
            if existing is not None and existing != arity:
                raise QueryError(
                    f"predicate {rule.head.relation!r} used with arities "
                    f"{existing} and {arity}"
                )
            self._idb_arities[rule.head.relation] = arity
        if output not in self._idb_arities:
            raise QueryError(f"output predicate {output!r} is not the head of any rule")

    # -- structure --------------------------------------------------------------
    def idb_predicates(self) -> FrozenSet[str]:
        """Predicates defined by rules."""
        return frozenset(self._idb_arities)

    def edb_predicates(self) -> FrozenSet[str]:
        """Body predicates not defined by any rule (database relations)."""
        used: Set[str] = set()
        for rule in self.rules:
            used |= rule.body_predicates()
        return frozenset(used - self.idb_predicates())

    def relations_used(self) -> FrozenSet[str]:
        return self.edb_predicates()

    def dependency_graph(self) -> Dict[str, Set[str]]:
        """Adjacency sets: ``graph[p]`` is the set of predicates ``p`` depends on."""
        graph: Dict[str, Set[str]] = {p: set() for p in self._idb_arities}
        for rule in self.rules:
            graph[rule.head.relation] |= rule.body_predicates()
        return graph

    def is_recursive(self) -> bool:
        """Whether the dependency graph restricted to IDB predicates has a cycle."""
        graph = self.dependency_graph()
        idb = self.idb_predicates()
        colour: Dict[str, int] = {}

        def visit(node: str) -> bool:
            colour[node] = 1
            for successor in graph.get(node, ()):  # pragma: no branch
                if successor not in idb:
                    continue
                state = colour.get(successor, 0)
                if state == 1:
                    return True
                if state == 0 and visit(successor):
                    return True
            colour[node] = 2
            return False

        return any(colour.get(node, 0) == 0 and visit(node) for node in idb)

    def stratification(self) -> List[str]:
        """IDB predicates in a topological order of the dependency graph.

        Only defined for non-recursive programs; raises :class:`QueryError`
        when a cycle exists.
        """
        if self.is_recursive():
            raise QueryError("program is recursive; no topological order exists")
        graph = self.dependency_graph()
        idb = self.idb_predicates()
        order: List[str] = []
        visited: Set[str] = set()

        def visit(node: str) -> None:
            if node in visited or node not in idb:
                return
            visited.add(node)
            for dependency in sorted(graph.get(node, ())):
                visit(dependency)
            order.append(node)

        for node in sorted(idb):
            visit(node)
        return order

    @property
    def output_attributes(self) -> Tuple[str, ...]:
        arity = self._idb_arities[self.output]
        head = next(rule.head for rule in self.rules if rule.head.relation == self.output)
        raw = []
        for position, term in enumerate(head.terms, start=1):
            raw.append(term.name if isinstance(term, Var) else f"c{position}")
        names = unique_attribute_names(raw)
        return names[:arity]

    def constants(self) -> Tuple[Value, ...]:
        """All constants across all rules."""
        values: Tuple[Value, ...] = ()
        for rule in self.rules:
            values += rule.constants()
        return values

    def body_size(self) -> int:
        """Total number of body atoms, a size measure for scaling studies."""
        return sum(len(rule.body) + len(rule.comparisons) for rule in self.rules)

    # -- evaluation ----------------------------------------------------------------
    def _idb_schema(self, predicate: str) -> RelationSchema:
        arity = self._idb_arities[predicate]
        return RelationSchema(predicate, [f"a{i}" for i in range(1, arity + 1)])

    def _apply_rule(
        self,
        rule: DatalogRule,
        database: Database,
        idb: Mapping[str, Relation],
        counter: Optional[StepCounter],
        delta: Optional[Mapping[str, Relation]] = None,
        delta_position: Optional[int] = None,
    ) -> Set[Row]:
        """All head tuples derivable by one rule.

        When ``delta``/``delta_position`` are given, the IDB atom at that body
        position reads from the delta relation instead of the full relation
        (the semi-naive restriction).
        """
        extra: Dict[str, Relation] = dict(idb)
        atoms = list(rule.body)
        if delta is not None and delta_position is not None:
            target = atoms[delta_position]
            alias = f"__delta__{target.relation}"
            extra[alias] = Relation(
                self._idb_schema(target.relation).rename(alias),
                delta[target.relation].rows(),
            )
            atoms[delta_position] = RelationAtom(alias, target.terms)
        derived: Set[Row] = set()
        for binding in enumerate_bindings(
            database, atoms, rule.comparisons, counter=counter, extra_relations=extra
        ):
            derived.add(project_binding(binding, rule.head.terms))
        return derived

    def evaluate_all(
        self, database: Database, counter: Optional[StepCounter] = None
    ) -> Dict[str, Relation]:
        """Fixpoint of the whole program: every IDB predicate's relation."""
        idb: Dict[str, Relation] = {
            predicate: Relation(self._idb_schema(predicate)) for predicate in self._idb_arities
        }
        # Round 0: rules fire on EDB-only information.
        delta: Dict[str, Set[Row]] = {predicate: set() for predicate in self._idb_arities}
        for rule in self.rules:
            for row in self._apply_rule(rule, database, idb, counter):
                delta[rule.head.relation].add(row)
        while any(delta.values()):
            delta_relations = {
                predicate: Relation(self._idb_schema(predicate), rows)
                for predicate, rows in delta.items()
            }
            for predicate, rows in delta.items():
                idb[predicate].add_all(rows)
            new_delta: Dict[str, Set[Row]] = {predicate: set() for predicate in self._idb_arities}
            for rule in self.rules:
                idb_positions = [
                    index
                    for index, atom in enumerate(rule.body)
                    if atom.relation in self._idb_arities
                ]
                if not idb_positions:
                    continue
                for position in idb_positions:
                    if not delta_relations[rule.body[position].relation].rows():
                        continue
                    derived = self._apply_rule(
                        rule, database, idb, counter, delta_relations, position
                    )
                    for row in derived:
                        if row not in idb[rule.head.relation].rows():
                            new_delta[rule.head.relation].add(row)
            delta = new_delta
        return idb

    def evaluate(
        self, database: Database, counter: Optional[StepCounter] = None, extra_relations=None
    ) -> Relation:
        if extra_relations:
            database = database.copy()
            for name, relation in extra_relations.items():
                if name in database:
                    database = database.without_relation(name)
                database.add_relation(relation)
        idb = self.evaluate_all(database, counter=counter)
        result = self.empty_answer()
        result.add_all(idb[self.output].rows())
        return result

    def __str__(self) -> str:
        return "\n".join(str(rule) for rule in self.rules)


class NonRecursiveDatalogProgram(DatalogProgram):
    """A Datalog program whose dependency graph is required to be acyclic."""

    def __init__(
        self,
        rules: Iterable[DatalogRule],
        output: str,
        name: str = "Q",
        answer_name: str = Query.answer_name,
    ) -> None:
        super().__init__(rules, output, name=name, answer_name=answer_name)
        if self.is_recursive():
            raise QueryError(
                f"program {name!r} is recursive; use DatalogProgram for recursive queries"
            )

    def evaluate_all(
        self, database: Database, counter: Optional[StepCounter] = None
    ) -> Dict[str, Relation]:
        """Evaluate predicates bottom-up along a topological order (no fixpoint)."""
        idb: Dict[str, Relation] = {
            predicate: Relation(self._idb_schema(predicate)) for predicate in self._idb_arities
        }
        rules_by_head: Dict[str, List[DatalogRule]] = {}
        for rule in self.rules:
            rules_by_head.setdefault(rule.head.relation, []).append(rule)
        for predicate in self.stratification():
            for rule in rules_by_head.get(predicate, ()):  # pragma: no branch
                idb[predicate].add_all(self._apply_rule(rule, database, idb, counter))
        return idb
