"""Query languages of the paper and their evaluators.

Exports the AST building blocks, the concrete query classes for each language
LQ in {SP, CQ, UCQ, ∃FO+, DATALOG_nr, FO, DATALOG}, the language lattice, the
membership problem, the fluent builder helpers and a small rule parser.
"""

from repro.queries.ast import (
    And,
    Comparison,
    ComparisonOp,
    Const,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    Term,
    Var,
    free_variables,
)
from repro.queries.base import Query
from repro.queries.bindings import StepCounter, enumerate_bindings, enumerate_bindings_naive
from repro.queries.cq import ConjunctiveQuery, cq_from_formula
from repro.queries.datalog import DatalogProgram, DatalogRule, NonRecursiveDatalogProgram
from repro.queries.efo import PositiveExistentialQuery
from repro.queries.fo import FirstOrderQuery
from repro.queries.languages import (
    ALL_LANGUAGES,
    CQ_GROUP,
    DATALOG_GROUP,
    FO_GROUP,
    QueryLanguage,
    classify_query,
)
from repro.queries.membership import answer_size, is_empty, is_member
from repro.queries.parser import parse_cq, parse_program, parse_rule
from repro.queries.plan import (
    JoinPlan,
    PlannedAtom,
    PlannedRange,
    cached_plan,
    clear_plan_cache,
    plan_cache_info,
    plan_conjunction,
)
from repro.queries.sp import SPQuery, identity_query, identity_query_for
from repro.queries.ucq import UnionOfConjunctiveQueries

__all__ = [
    "ALL_LANGUAGES",
    "And",
    "CQ_GROUP",
    "Comparison",
    "ComparisonOp",
    "ConjunctiveQuery",
    "Const",
    "DATALOG_GROUP",
    "DatalogProgram",
    "DatalogRule",
    "Exists",
    "FO_GROUP",
    "FirstOrderQuery",
    "ForAll",
    "Formula",
    "JoinPlan",
    "PlannedAtom",
    "PlannedRange",
    "NonRecursiveDatalogProgram",
    "Not",
    "Or",
    "PositiveExistentialQuery",
    "Query",
    "QueryLanguage",
    "RelationAtom",
    "SPQuery",
    "StepCounter",
    "Term",
    "UnionOfConjunctiveQueries",
    "Var",
    "answer_size",
    "cached_plan",
    "classify_query",
    "clear_plan_cache",
    "cq_from_formula",
    "enumerate_bindings",
    "enumerate_bindings_naive",
    "free_variables",
    "plan_cache_info",
    "plan_conjunction",
    "identity_query",
    "identity_query_for",
    "is_empty",
    "is_member",
    "parse_cq",
    "parse_program",
    "parse_rule",
]
