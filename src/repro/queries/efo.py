"""Positive existential first-order queries (∃FO+).

Formulas built from atoms with ∧, ∨ and ∃.  Evaluation proceeds by
standardising bound variables apart, flattening to disjunctive normal form and
reusing the conjunctive-query machinery per disjunct; this mirrors the
textbook equivalence ∃FO+ ≡ UCQ (with the usual exponential worst case in the
formula size, which is exactly the combined-complexity behaviour the paper
studies).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.queries.ast import (
    And,
    Comparison,
    Exists,
    Formula,
    Or,
    RelationAtom,
    Term,
    Var,
    as_term,
    formula_constants,
    free_variables,
    is_positive_existential,
    relation_names,
    substitute,
    fresh_variables,
)
from repro.queries.base import Query
from repro.queries.bindings import StepCounter
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import QueryError
from repro.relational.schema import Value


def _standardise_apart(formula: Formula, factory) -> Formula:
    """Rename every quantified variable to a fresh name.

    After this pass the quantifiers can be dropped safely: no two quantifiers
    bind the same name and bound names never clash with free names.
    """
    if isinstance(formula, (RelationAtom, Comparison)):
        return formula
    if isinstance(formula, And):
        return And(*(_standardise_apart(op, factory) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(*(_standardise_apart(op, factory) for op in formula.operands))
    if isinstance(formula, Exists):
        mapping: Dict[Var, Term] = {var: factory.fresh() for var in formula.variables}
        renamed_body = substitute(formula.operand, mapping)
        return Exists(
            tuple(mapping[var] for var in formula.variables),
            _standardise_apart(renamed_body, factory),
        )
    raise QueryError(f"node not allowed in ∃FO+: {formula!r}")


def _strip_quantifiers(formula: Formula) -> Formula:
    if isinstance(formula, (RelationAtom, Comparison)):
        return formula
    if isinstance(formula, And):
        return And(*(_strip_quantifiers(op) for op in formula.operands))
    if isinstance(formula, Or):
        return Or(*(_strip_quantifiers(op) for op in formula.operands))
    if isinstance(formula, Exists):
        return _strip_quantifiers(formula.operand)
    raise QueryError(f"node not allowed in ∃FO+: {formula!r}")


def _to_dnf(formula: Formula) -> List[List[Formula]]:
    """Disjunctive normal form as a list of conjunctions of atoms."""
    if isinstance(formula, (RelationAtom, Comparison)):
        return [[formula]]
    if isinstance(formula, Or):
        result: List[List[Formula]] = []
        for operand in formula.operands:
            result.extend(_to_dnf(operand))
        return result
    if isinstance(formula, And):
        if not formula.operands:
            return [[]]
        operand_dnfs = [_to_dnf(op) for op in formula.operands]
        result = []
        for combination in product(*operand_dnfs):
            merged: List[Formula] = []
            for conjunct in combination:
                merged.extend(conjunct)
            result.append(merged)
        return result
    raise QueryError(f"node not allowed in quantifier-free ∃FO+: {formula!r}")


@dataclass
class PositiveExistentialQuery(Query):
    """An ∃FO+ query: a head plus a positive existential formula."""

    head: Tuple[Term, ...]
    formula: Formula
    name: str = "Q"
    answer_name: str = Query.answer_name
    #: Evaluated through the UCQ rewriting, which reads only its relations.
    active_domain_independent = True

    def __init__(
        self,
        head: Sequence["Term | Value"],
        formula: Formula,
        name: str = "Q",
        answer_name: str = Query.answer_name,
    ) -> None:
        if not is_positive_existential(formula):
            raise QueryError(
                "formula is outside ∃FO+ (only atoms, AND, OR and EXISTS are allowed)"
            )
        self.head = tuple(as_term(t) for t in head)
        self.formula = formula
        self.name = name
        self.answer_name = answer_name
        self._ucq: Optional[UnionOfConjunctiveQueries] = None

    # -- normalisation ---------------------------------------------------------
    def to_ucq(self) -> UnionOfConjunctiveQueries:
        """The equivalent UCQ (computed once and cached)."""
        if self._ucq is None:
            factory = fresh_variables("_e")
            renamed = _standardise_apart(self.formula, factory)
            stripped = _strip_quantifiers(renamed)
            disjuncts = []
            for index, conjunction in enumerate(_to_dnf(stripped), start=1):
                atoms = [a for a in conjunction if isinstance(a, RelationAtom)]
                comparisons = [a for a in conjunction if isinstance(a, Comparison)]
                disjuncts.append(
                    ConjunctiveQuery(
                        self.head,
                        atoms,
                        comparisons,
                        name=f"{self.name}_{index}",
                        answer_name=self.answer_name,
                    )
                )
            self._ucq = UnionOfConjunctiveQueries(
                disjuncts, name=self.name, answer_name=self.answer_name
            )
        return self._ucq

    # -- Query interface ----------------------------------------------------------
    @property
    def output_attributes(self) -> Tuple[str, ...]:
        return self.to_ucq().output_attributes

    def relations_used(self) -> FrozenSet[str]:
        return relation_names(self.formula)

    def evaluate(
        self,
        database: Database,
        counter: Optional[StepCounter] = None,
        extra_relations=None,
    ) -> Relation:
        return self.to_ucq().evaluate(database, counter=counter, extra_relations=extra_relations)

    def contains(self, database: Database, row: Row) -> bool:
        return self.to_ucq().contains(database, row)

    def is_satisfiable_on(self, database: Database) -> bool:
        """Whether ``Q(D)`` is non-empty."""
        return self.to_ucq().is_satisfiable_on(database)

    def constants(self) -> Tuple[Value, ...]:
        """All constants in the formula and head."""
        head_constants = tuple(t.value for t in self.head if not isinstance(t, Var))
        return head_constants + formula_constants(self.formula)

    def free_variables(self) -> FrozenSet[Var]:
        """Free variables of the formula."""
        return free_variables(self.formula)

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        return f"{self.name}({head}) = {self.formula}"
