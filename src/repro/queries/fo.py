"""First-order queries (relational calculus) under active-domain semantics.

FO adds negation and universal quantification to ∃FO+.  Following the standard
convention (and the paper's use of FO for, e.g., course-prerequisite
constraints), quantifiers range over the *active domain*: every constant in
the database, in the query, and in the optional extra relations (such as a
materialised candidate package).

Evaluation is the textbook structural recursion; its cost is polynomial in
``|D|`` for a fixed query but exponential in the quantifier depth of the
query, matching the paper's PSPACE combined complexity for FO.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.queries.ast import (
    And,
    Comparison,
    Const,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    RelationAtom,
    Term,
    Var,
    as_term,
    formula_constants,
    free_variables,
    relation_names,
)
from repro.queries.base import Query
from repro.queries.bindings import StepCounter
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import EvaluationError, QueryError
from repro.relational.ordering import value_sort_key
from repro.relational.schema import Value


@dataclass
class FirstOrderQuery(Query):
    """An FO query: output terms plus an arbitrary first-order formula."""

    head: Tuple[Term, ...]
    formula: Formula
    name: str = "Q"
    answer_name: str = Query.answer_name

    def __init__(
        self,
        head: Sequence["Term | Value"],
        formula: Formula,
        name: str = "Q",
        answer_name: str = Query.answer_name,
    ) -> None:
        self.head = tuple(as_term(t) for t in head)
        self.formula = formula
        self.name = name
        self.answer_name = answer_name
        head_vars = {t for t in self.head if isinstance(t, Var)}
        missing = head_vars - set(free_variables(formula))
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise QueryError(
                f"FO query {name!r}: head variables not free in the formula: {names}"
            )

    # -- Query interface ---------------------------------------------------------
    @property
    def output_attributes(self) -> Tuple[str, ...]:
        from repro.queries.cq import _head_attribute_names

        return _head_attribute_names(self.head)

    def relations_used(self) -> FrozenSet[str]:
        return relation_names(self.formula)

    def active_domain(
        self, database: Database, extra_relations: Optional[Mapping[str, Relation]] = None
    ) -> Tuple[Value, ...]:
        """``adom(Q, D)``: constants of the database, the query and extras."""
        domain = set(database.active_domain())
        domain.update(formula_constants(self.formula))
        domain.update(t.value for t in self.head if isinstance(t, Const))
        if extra_relations:
            for relation in extra_relations.values():
                domain |= relation.active_domain()
        return tuple(sorted(domain, key=value_sort_key))

    def evaluate(
        self,
        database: Database,
        counter: Optional[StepCounter] = None,
        extra_relations: Optional[Mapping[str, Relation]] = None,
    ) -> Relation:
        domain = self.active_domain(database, extra_relations)
        evaluator = _FormulaEvaluator(database, domain, counter, extra_relations)
        result = self.empty_answer()
        head_vars: List[Var] = []
        seen = set()
        for term in self.head:
            if isinstance(term, Var) and term.name not in seen:
                head_vars.append(term)
                seen.add(term.name)
        for assignment in product(domain, repeat=len(head_vars)):
            binding = {var.name: value for var, value in zip(head_vars, assignment)}
            if evaluator.satisfies(self.formula, binding):
                result.add(
                    tuple(
                        binding[t.name] if isinstance(t, Var) else t.value for t in self.head
                    )
                )
        return result

    def contains(self, database: Database, row: Row) -> bool:
        row = tuple(row)
        if len(row) != len(self.head):
            return False
        binding: Dict[str, Value] = {}
        for term, value in zip(self.head, row):
            if isinstance(term, Const):
                if term.value != value:
                    return False
            else:
                if term.name in binding and binding[term.name] != value:
                    return False
                binding[term.name] = value
        domain = self.active_domain(database)
        evaluator = _FormulaEvaluator(database, domain, None, None)
        return evaluator.satisfies(self.formula, binding)

    def is_boolean_true(self, database: Database) -> bool:
        """Evaluate a Boolean (0-ary) FO query to a truth value."""
        if self.head:
            raise QueryError("is_boolean_true is only defined for Boolean queries")
        domain = self.active_domain(database)
        evaluator = _FormulaEvaluator(database, domain, None, None)
        return evaluator.satisfies(self.formula, {})

    def constants(self) -> Tuple[Value, ...]:
        """All constants in head and formula."""
        head_constants = tuple(t.value for t in self.head if isinstance(t, Const))
        return head_constants + formula_constants(self.formula)

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        return f"{self.name}({head}) = {self.formula}"


class _FormulaEvaluator:
    """Structural-recursion satisfaction checking for FO formulas."""

    def __init__(
        self,
        database: Database,
        domain: Sequence[Value],
        counter: Optional[StepCounter],
        extra_relations: Optional[Mapping[str, Relation]],
    ) -> None:
        self._database = database
        self._domain = tuple(domain)
        self._counter = counter
        self._extra = dict(extra_relations or {})

    def _relation(self, name: str) -> Relation:
        if name in self._extra:
            return self._extra[name]
        return self._database.relation(name)

    def satisfies(self, formula: Formula, binding: Mapping[str, Value]) -> bool:
        if self._counter is not None:
            self._counter.tick()
        if isinstance(formula, RelationAtom):
            values = []
            for term in formula.terms:
                if isinstance(term, Const):
                    values.append(term.value)
                else:
                    if term.name not in binding:
                        raise EvaluationError(
                            f"free variable {term.name!r} not bound during FO evaluation"
                        )
                    values.append(binding[term.name])
            relation = self._relation(formula.relation)
            if len(values) != relation.arity:
                raise EvaluationError(
                    f"atom {formula} has arity {len(values)} but relation "
                    f"{formula.relation!r} has arity {relation.arity}"
                )
            return tuple(values) in relation.rows()
        if isinstance(formula, Comparison):
            return formula.evaluate(binding)
        if isinstance(formula, And):
            return all(self.satisfies(op, binding) for op in formula.operands)
        if isinstance(formula, Or):
            return any(self.satisfies(op, binding) for op in formula.operands)
        if isinstance(formula, Not):
            return not self.satisfies(formula.operand, binding)
        if isinstance(formula, Exists):
            return self._quantify(formula.variables, formula.operand, binding, existential=True)
        if isinstance(formula, ForAll):
            return self._quantify(formula.variables, formula.operand, binding, existential=False)
        raise EvaluationError(f"unknown formula node: {formula!r}")

    def _quantify(
        self,
        variables: Tuple[Var, ...],
        operand: Formula,
        binding: Mapping[str, Value],
        existential: bool,
    ) -> bool:
        if existential:
            return self._exists(variables, operand, binding)
        names = [v.name for v in variables]
        for assignment in product(self._domain, repeat=len(names)):
            extended = dict(binding)
            extended.update(zip(names, assignment))
            if not self.satisfies(operand, extended):
                return False
        return True

    def _exists(
        self, variables: Tuple[Var, ...], operand: Formula, binding: Mapping[str, Value]
    ) -> bool:
        """Existential quantification with join-guided candidate generation.

        When the operand is a conjunction containing positive relation atoms,
        candidate bindings for the quantified variables are generated by
        matching those atoms against the database (a backtracking join) instead
        of iterating the full ``|adom|^n`` product; quantified variables that do
        not occur in any positive atom still range over the active domain.
        This changes nothing semantically — every satisfying binding must
        satisfy the positive conjuncts — but makes the FO compatibility
        constraints of realistic workloads tractable.
        """
        names = {v.name for v in variables}
        positive_atoms: List[RelationAtom] = []
        if isinstance(operand, And):
            positive_atoms = [f for f in operand.operands if isinstance(f, RelationAtom)]
        elif isinstance(operand, RelationAtom):
            positive_atoms = [operand]
        guided = [v for v in variables if any(v in atom.variables() for atom in positive_atoms)]
        free_iteration = [v for v in variables if v not in guided]

        if positive_atoms and guided:
            from repro.queries.bindings import enumerate_bindings

            initial = {
                name: value for name, value in binding.items() if name not in names
            }
            seen = set()
            try:
                candidate_bindings = enumerate_bindings(
                    self._database,
                    positive_atoms,
                    (),
                    initial_binding=initial,
                    counter=self._counter,
                    extra_relations=self._extra,
                )
            except Exception:  # pragma: no cover - fall back to plain iteration
                candidate_bindings = None
            if candidate_bindings is not None:
                for candidate in candidate_bindings:
                    key = tuple(candidate.get(v.name) for v in guided)
                    if key in seen:
                        continue
                    seen.add(key)
                    partial = dict(binding)
                    partial.update({v.name: candidate[v.name] for v in guided if v.name in candidate})
                    if self._exists_iterate(free_iteration, operand, partial):
                        return True
                return False
        return self._exists_iterate(list(variables), operand, binding)

    def _exists_iterate(
        self, variables: Sequence[Var], operand: Formula, binding: Mapping[str, Value]
    ) -> bool:
        if not variables:
            return self.satisfies(operand, binding)
        first, rest = variables[0], variables[1:]
        for value in self._domain:
            extended = dict(binding)
            extended[first.name] = value
            if self._exists_iterate(rest, operand, extended):
                return True
        return False
