"""The membership problem ``t ∈ Q(D)``.

The paper's upper- and lower-bound proofs repeatedly reduce recommendation
problems to (or from) query membership: membership is NP-complete for CQ/UCQ/
∃FO+, PSPACE-complete for DATALOG_nr and FO, EXPTIME-complete for DATALOG, and
PTIME for SP (combined complexity); for every language the *data* complexity
is PTIME.  This module exposes membership as a first-class function so tests
and benchmarks can exercise exactly that problem.
"""

from __future__ import annotations

from typing import Optional

from repro.queries.base import Query
from repro.queries.bindings import StepCounter
from repro.relational.database import Database, Row


def is_member(query: Query, database: Database, row: Row) -> bool:
    """Decide ``row ∈ Q(D)`` using the query's own (possibly optimised) check."""
    return query.contains(database, tuple(row))


def answer_size(query: Query, database: Database, counter: Optional[StepCounter] = None) -> int:
    """``|Q(D)|`` — used by workload generators and sanity checks."""
    try:
        return len(query.evaluate(database, counter=counter))
    except TypeError:
        # Query implementations that do not accept a counter argument.
        return len(query.evaluate(database))


def is_empty(query: Query, database: Database) -> bool:
    """Whether ``Q(D)`` is empty (the trigger for relaxation/adjustment)."""
    satisfiable = getattr(query, "is_satisfiable_on", None)
    if callable(satisfiable):
        return not satisfiable(database)
    return len(query.evaluate(database)) == 0
