"""Common interface for all query classes.

Every query evaluates a :class:`~repro.relational.database.Database` to a
:class:`~repro.relational.database.Relation` whose schema is the *answer
schema* ``RQ`` of the paper.  The answer relation name matters: compatibility
constraints are queries that mention ``RQ`` together with the database
relations, so the recommendation engine materialises a candidate package ``N``
as a relation named :attr:`Query.answer_name` before evaluating ``Qc``.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.relational.database import Database, Relation, Row
from repro.relational.schema import RelationSchema

DEFAULT_ANSWER_NAME = "RQ"


class Query(abc.ABC):
    """Abstract base class of every query language implementation."""

    #: Name of the answer relation ``RQ``; compatibility constraints refer to it.
    answer_name: str = DEFAULT_ANSWER_NAME

    #: Whether ``Q(D)`` is a function of the :meth:`relations_used` relations
    #: *alone*.  False (the conservative default) means evaluation may consult
    #: other parts of the database — e.g. FO quantifiers range over the full
    #: active domain, so inserting a tuple into an unrelated relation can
    #: change the answer.  Delta-driven caches (the footprint-aware
    #: compatibility oracle, the incremental view maintainers) may only skip
    #: work for modifications outside ``relations_used()`` when this is True.
    active_domain_independent: bool = False

    @property
    @abc.abstractmethod
    def output_attributes(self) -> Tuple[str, ...]:
        """Attribute names of the answer schema, in order."""

    @abc.abstractmethod
    def evaluate(self, database: Database) -> Relation:
        """Compute ``Q(D)`` as a relation named :attr:`answer_name`."""

    @abc.abstractmethod
    def relations_used(self) -> FrozenSet[str]:
        """Names of the database relations the query may read."""

    # -- shared helpers -------------------------------------------------------
    @property
    def output_arity(self) -> int:
        """Arity of the answer schema."""
        return len(self.output_attributes)

    def output_schema(self) -> RelationSchema:
        """The answer schema ``RQ``."""
        return RelationSchema(self.answer_name, self.output_attributes)

    def empty_answer(self) -> Relation:
        """An empty relation with the answer schema."""
        return Relation(self.output_schema())

    def answer_relation(self, rows: Sequence[Row]) -> Relation:
        """Materialise ``rows`` (e.g. a candidate package) under the answer schema."""
        return Relation(self.output_schema(), rows)

    def contains(self, database: Database, row: Row) -> bool:
        """The membership problem: is ``row`` in ``Q(D)``?

        The default implementation evaluates the full answer; subclasses
        override it when a cheaper check exists (e.g. SP and identity queries).
        """
        return tuple(row) in self.evaluate(database).rows()

    def is_boolean(self) -> bool:
        """Whether the query has an empty tuple of output attributes."""
        return self.output_arity == 0


def unique_attribute_names(raw_names: Sequence[str]) -> Tuple[str, ...]:
    """Make attribute names unique by suffixing duplicates.

    Query heads may repeat a variable or mix variables and constants; relation
    schemas need distinct attribute names, so ``x, x, 5`` becomes
    ``x, x_2, col_3``.
    """
    seen: dict = {}
    result = []
    for position, name in enumerate(raw_names, start=1):
        base = name if name else f"col_{position}"
        count = seen.get(base, 0) + 1
        seen[base] = count
        result.append(base if count == 1 else f"{base}_{count}")
    return tuple(result)
