"""SP queries and identity queries.

Section 6 of the paper singles out *SP queries* — selection plus projection
over one relation — as the prototypical language with a PTIME membership
problem, and uses the *identity query* (an SP query with no selection and full
projection) in several data-complexity lower bounds.

``Q(x̄) = ∃ x̄, ȳ (R(x̄, ȳ) ∧ ψ(x̄, ȳ))`` with ψ a conjunction of built-in
predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.queries.ast import Comparison, Const, RelationAtom, Term, Var, as_term
from repro.queries.base import Query, unique_attribute_names
from repro.queries.bindings import StepCounter
from repro.queries.cq import ConjunctiveQuery
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import QueryError
from repro.relational.schema import Value


@dataclass
class SPQuery(Query):
    """A selection-projection query over a single relation."""

    relation: str
    relation_terms: Tuple[Term, ...]
    head: Tuple[Term, ...]
    comparisons: Tuple[Comparison, ...] = ()
    name: str = "Q"
    answer_name: str = Query.answer_name
    #: A single scan of the one relation; nothing else is consulted.
    active_domain_independent = True

    def __init__(
        self,
        relation: str,
        relation_terms: Sequence["Term | Value"],
        head: Sequence["Term | Value"],
        comparisons: Iterable[Comparison] = (),
        name: str = "Q",
        answer_name: str = Query.answer_name,
    ) -> None:
        self.relation = relation
        self.relation_terms = tuple(as_term(t) for t in relation_terms)
        self.head = tuple(as_term(t) for t in head)
        self.comparisons = tuple(comparisons)
        self.name = name
        self.answer_name = answer_name
        atom_vars = {t.name for t in self.relation_terms if isinstance(t, Var)}
        for term in self.head:
            if isinstance(term, Var) and term.name not in atom_vars:
                raise QueryError(
                    f"SP query {name!r}: head variable {term.name!r} does not occur "
                    f"in the relation atom"
                )
        for comparison in self.comparisons:
            for var in comparison.variables():
                if var.name not in atom_vars:
                    raise QueryError(
                        f"SP query {name!r}: comparison variable {var.name!r} does not "
                        f"occur in the relation atom"
                    )

    # -- conversions ------------------------------------------------------------
    def atom(self) -> RelationAtom:
        """The single relation atom of the body."""
        return RelationAtom(self.relation, self.relation_terms)

    def to_cq(self) -> ConjunctiveQuery:
        """The same query as a :class:`ConjunctiveQuery`."""
        return ConjunctiveQuery(
            self.head,
            [self.atom()],
            self.comparisons,
            name=self.name,
            answer_name=self.answer_name,
        )

    # -- Query interface -----------------------------------------------------------
    @property
    def output_attributes(self) -> Tuple[str, ...]:
        raw = []
        for position, term in enumerate(self.head, start=1):
            raw.append(term.name if isinstance(term, Var) else f"c{position}")
        return unique_attribute_names(raw)

    def relations_used(self) -> FrozenSet[str]:
        return frozenset({self.relation})

    def evaluate(
        self, database: Database, counter: Optional[StepCounter] = None, extra_relations=None
    ) -> Relation:
        source = (
            extra_relations[self.relation]
            if extra_relations and self.relation in extra_relations
            else database.relation(self.relation)
        )
        result = self.empty_answer()
        for row in source:
            binding = self._match(row)
            if binding is None:
                continue
            if all(c.evaluate(binding) for c in self.comparisons):
                result.add(
                    tuple(
                        binding[t.name] if isinstance(t, Var) else t.value for t in self.head
                    )
                )
            if counter is not None:
                counter.tick()
        return result

    def _match(self, row: Row) -> Optional[dict]:
        if len(row) != len(self.relation_terms):
            return None
        binding: dict = {}
        for term, value in zip(self.relation_terms, row):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            else:
                if term.name in binding and binding[term.name] != value:
                    return None
                binding[term.name] = value
        return binding

    def contains(self, database: Database, row: Row) -> bool:
        """PTIME membership check: scan the single relation once."""
        return tuple(row) in self.evaluate(database).rows()

    def constants(self) -> Tuple[Value, ...]:
        """All constants of the query."""
        values = tuple(t.value for t in self.relation_terms if isinstance(t, Const))
        values += tuple(t.value for t in self.head if isinstance(t, Const))
        for comparison in self.comparisons:
            values += comparison.constants()
        return values

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head)
        body = [str(self.atom())] + [str(c) for c in self.comparisons]
        return f"{self.name}({head}) :- " + " ∧ ".join(body)


def identity_query(
    relation_name: str,
    arity: "int | Sequence[str]",
    name: str = "Q",
    answer_name: str = Query.answer_name,
) -> SPQuery:
    """The identity query on a relation: select everything, project everything.

    ``arity`` is either the number of attributes (output attributes are then
    named ``x1, ..., xn``) or the attribute names themselves, in which case the
    answer schema reuses them — convenient when cost/val functions address
    attributes by name.

    The paper's data-complexity lower bounds (e.g. Lemma 4.4 and the
    MAX-WEIGHT SAT reduction) take ``Q`` to be exactly this query, which makes
    them apply to every language containing SP.
    """
    if isinstance(arity, int):
        variables = [Var(f"x{i}") for i in range(1, arity + 1)]
    else:
        variables = [Var(attribute) for attribute in arity]
    return SPQuery(relation_name, variables, variables, name=name, answer_name=answer_name)


def identity_query_for(relation, name: str = "Q", answer_name: str = Query.answer_name) -> SPQuery:
    """The identity query for a concrete :class:`~repro.relational.database.Relation`.

    The answer schema keeps the relation's attribute names.
    """
    return identity_query(
        relation.name, relation.schema.attribute_names, name=name, answer_name=answer_name
    )
