"""Relations and databases.

A :class:`Relation` is a named, schema-checked set of tuples; a
:class:`Database` is a collection of relations.  Both are the concrete
counterparts of the paper's item collection ``D``.

Relations are set-semantics (no duplicates), matching the paper's model where
packages are subsets of the query answer ``Q(D)``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

from repro.relational.errors import IntegrityError, SchemaError, UnknownRelationError
from repro.relational.schema import DatabaseSchema, RelationSchema, Value

Row = Tuple[Value, ...]


class Relation:
    """A finite set of tuples over a :class:`RelationSchema`."""

    __slots__ = ("schema", "_rows")

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Value]] = ()) -> None:
        self.schema = schema
        self._rows: Set[Row] = set()
        for row in rows:
            self.add(row)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_dicts(
        cls, schema: RelationSchema, rows: Iterable[Mapping[str, Value]]
    ) -> "Relation":
        """Build a relation from attribute-name keyed dictionaries."""
        relation = cls(schema)
        for row in rows:
            relation.add(schema.tuple_from_mapping(row))
        return relation

    # -- mutation -------------------------------------------------------------
    def add(self, row: Sequence[Value]) -> Row:
        """Insert a tuple (validated against the schema) and return it."""
        validated = self.schema.validate_tuple(row)
        self._rows.add(validated)
        return validated

    def add_all(self, rows: Iterable[Sequence[Value]]) -> None:
        """Insert every tuple in ``rows``."""
        for row in rows:
            self.add(row)

    def discard(self, row: Sequence[Value]) -> bool:
        """Remove a tuple if present; return whether it was present."""
        validated = self.schema.validate_tuple(row)
        if validated in self._rows:
            self._rows.remove(validated)
            return True
        return False

    def clear(self) -> None:
        """Remove every tuple."""
        self._rows.clear()

    # -- queries ---------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation name from its schema."""
        return self.schema.name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self.schema.arity

    def rows(self) -> FrozenSet[Row]:
        """An immutable snapshot of the tuples."""
        return frozenset(self._rows)

    def sorted_rows(self) -> Tuple[Row, ...]:
        """Tuples in a deterministic order (useful for printing and tests)."""
        return tuple(sorted(self._rows, key=repr))

    def __contains__(self, row: Sequence[Value]) -> bool:
        try:
            validated = self.schema.validate_tuple(row)
        except IntegrityError:
            return False
        return validated in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema.name == other.schema.name and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - relations used as dict keys rarely
        return hash((self.schema.name, frozenset(self._rows)))

    def column(self, attribute: str) -> Set[Value]:
        """All distinct values of ``attribute``."""
        index = self.schema.index_of(attribute)
        return {row[index] for row in self._rows}

    def active_domain(self) -> Set[Value]:
        """All constants appearing anywhere in the relation."""
        return {value for row in self._rows for value in row}

    def copy(self) -> "Relation":
        """A shallow, independent copy."""
        return Relation(self.schema, self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.schema.name}, {len(self._rows)} tuples)"

    def pretty(self, limit: Optional[int] = 20) -> str:
        """A small textual table, used by the examples."""
        header = " | ".join(self.schema.attribute_names)
        lines = [header, "-" * len(header)]
        rows = self.sorted_rows()
        shown = rows if limit is None else rows[:limit]
        for row in shown:
            lines.append(" | ".join(str(v) for v in row))
        if limit is not None and len(rows) > limit:
            lines.append(f"... ({len(rows) - limit} more)")
        return "\n".join(lines)


class Database:
    """A collection of relations; the item collection ``D`` of the paper."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_schema(cls, schema: DatabaseSchema) -> "Database":
        """An empty database with one empty relation per schema entry."""
        return cls(Relation(rel_schema) for rel_schema in schema)

    def add_relation(self, relation: Relation) -> None:
        """Register a relation; duplicate names are rejected."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation: {relation.name!r}")
        self._relations[relation.name] = relation

    def create_relation(
        self, name: str, attributes: Sequence[str], rows: Iterable[Sequence[Value]] = ()
    ) -> Relation:
        """Create, register and return a new relation."""
        relation = Relation(RelationSchema(name, attributes), rows)
        self.add_relation(relation)
        return relation

    # -- access ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """The relation called ``name``; raises :class:`UnknownRelationError`."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> Tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def relations(self) -> Tuple[Relation, ...]:
        """All relations, sorted by name."""
        return tuple(self._relations[name] for name in self.relation_names())

    def schema(self) -> DatabaseSchema:
        """The database schema induced by the registered relations."""
        return DatabaseSchema(rel.schema for rel in self.relations())

    # -- statistics -----------------------------------------------------------------
    def size(self) -> int:
        """Total number of tuples; the ``|D|`` of the paper."""
        return sum(len(rel) for rel in self._relations.values())

    def __len__(self) -> int:
        return self.size()

    def active_domain(self) -> Set[Value]:
        """All constants appearing in any relation (``adom(D)``)."""
        domain: Set[Value] = set()
        for relation in self._relations.values():
            domain |= relation.active_domain()
        return domain

    # -- copying / combining -----------------------------------------------------------
    def copy(self) -> "Database":
        """A deep-enough copy: relations are copied, tuples are shared."""
        return Database(rel.copy() for rel in self._relations.values())

    def with_relation(self, relation: Relation) -> "Database":
        """A copy of this database with ``relation`` added or replaced.

        Used to evaluate compatibility constraints, which mention both the
        database relations and the answer relation ``RQ`` holding a candidate
        package.
        """
        new = Database()
        for name, rel in self._relations.items():
            if name != relation.name:
                new.add_relation(rel)
        new.add_relation(relation)
        return new

    def without_relation(self, name: str) -> "Database":
        """A copy of this database with relation ``name`` removed."""
        new = Database()
        for rel_name, rel in self._relations.items():
            if rel_name != name:
                new.add_relation(rel)
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if self.relation_names() != other.relation_names():
            return False
        return all(
            self._relations[name].rows() == other._relations[name].rows()
            for name in self._relations
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"Database({parts})"
