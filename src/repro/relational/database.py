"""Relations and databases.

A :class:`Relation` is a named, schema-checked set of tuples; a
:class:`Database` is a collection of relations.  Both are the concrete
counterparts of the paper's item collection ``D``.

Relations are set-semantics (no duplicates), matching the paper's model where
packages are subsets of the query answer ``Q(D)``.

Relations additionally maintain *lazy hash indexes*: for any tuple of
attribute positions, :meth:`Relation.index_on` builds (once) and caches a map
from position-values to the rows carrying them, and :meth:`Relation.probe`
answers point lookups through it.  The join planner in
:mod:`repro.queries.plan` uses these indexes to turn full relation scans into
hash probes whenever a variable is already bound.  Every mutation bumps the
relation's :attr:`Relation.version` and drops the cached indexes, so a stale
index can never serve a query; caches keyed on database contents (e.g. the
compatibility oracle) compare :meth:`Database.version` snapshots for the same
reason.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

from repro.relational.errors import IntegrityError, SchemaError, UnknownRelationError
from repro.relational.schema import DatabaseSchema, RelationSchema, Value

Row = Tuple[Value, ...]


class Relation:
    """A finite set of tuples over a :class:`RelationSchema`."""

    __slots__ = ("schema", "_rows", "_indexes", "_version")

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Value]] = ()) -> None:
        self.schema = schema
        self._rows: Set[Row] = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Value, ...], Tuple[Row, ...]]] = {}
        self._version = 0
        for row in rows:
            self.add(row)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_dicts(
        cls, schema: RelationSchema, rows: Iterable[Mapping[str, Value]]
    ) -> "Relation":
        """Build a relation from attribute-name keyed dictionaries."""
        relation = cls(schema)
        for row in rows:
            relation.add(schema.tuple_from_mapping(row))
        return relation

    # -- mutation -------------------------------------------------------------
    def _mutated(self) -> None:
        """Record a change to the row set: bump the version, drop stale indexes."""
        self._version += 1
        if self._indexes:
            self._indexes.clear()

    def add(self, row: Sequence[Value]) -> Row:
        """Insert a tuple (validated against the schema) and return it."""
        validated = self.schema.validate_tuple(row)
        if validated not in self._rows:
            self._rows.add(validated)
            self._mutated()
        return validated

    def add_all(self, rows: Iterable[Sequence[Value]]) -> None:
        """Insert every tuple in ``rows``."""
        for row in rows:
            self.add(row)

    def discard(self, row: Sequence[Value]) -> bool:
        """Remove a tuple if present; return whether it was present."""
        validated = self.schema.validate_tuple(row)
        if validated in self._rows:
            self._rows.remove(validated)
            self._mutated()
            return True
        return False

    def clear(self) -> None:
        """Remove every tuple."""
        if self._rows:
            self._rows.clear()
            self._mutated()

    def replace_rows(self, rows: Iterable[Row]) -> None:
        """Replace the whole row set in place, skipping per-tuple validation.

        This is the trusted bulk-update behind the reusable ``Qc`` probe view:
        the caller guarantees ``rows`` are schema-valid plain tuples (e.g. rows
        drawn from another relation, or the items of a
        :class:`~repro.core.packages.Package` over the same schema).  The
        mutation contract is preserved — the version counter is bumped and
        cached indexes are dropped exactly as for :meth:`add`/:meth:`discard` —
        so index caches and the compatibility oracle can never serve stale
        state through this path.
        """
        self._rows = set(rows)
        self._mutated()

    # -- hash indexes -----------------------------------------------------------
    @property
    def version(self) -> int:
        """A counter incremented on every mutation of the row set.

        Caches derived from the rows (hash indexes, memoized compatibility
        verdicts) compare versions to detect staleness.
        """
        return self._version

    def _validated_positions(self, positions: Sequence[int]) -> Tuple[int, ...]:
        key = tuple(positions)
        for position in key:
            if not 0 <= position < self.schema.arity:
                raise SchemaError(
                    f"relation {self.name!r}: index position {position} outside "
                    f"arity {self.schema.arity}"
                )
        return key

    def index_on(
        self, positions: Sequence[int]
    ) -> Mapping[Tuple[Value, ...], Tuple[Row, ...]]:
        """The hash index on ``positions``: position-values → rows carrying them.

        Built on first use and cached until the relation is mutated.  An empty
        ``positions`` tuple is rejected — that would be a full copy of the
        relation masquerading as an index.
        """
        key = self._validated_positions(positions)
        if not key:
            raise SchemaError(f"relation {self.name!r}: cannot index on zero positions")
        index = self._indexes.get(key)
        if index is None:
            buckets: Dict[Tuple[Value, ...], list] = {}
            for row in self._rows:
                buckets.setdefault(tuple(row[p] for p in key), []).append(row)
            index = {values: tuple(rows) for values, rows in buckets.items()}
            self._indexes[key] = index
        return index

    def index_on_attributes(
        self, attributes: Sequence[str]
    ) -> Mapping[Tuple[Value, ...], Tuple[Row, ...]]:
        """:meth:`index_on` addressed by attribute names instead of positions."""
        return self.index_on(tuple(self.schema.index_of(a) for a in attributes))

    def probe(self, positions: Sequence[int], values: Sequence[Value]) -> Tuple[Row, ...]:
        """All rows whose ``positions`` carry exactly ``values`` (via the index)."""
        return self.index_on(positions).get(tuple(values), ())

    def indexed_position_sets(self) -> Tuple[Tuple[int, ...], ...]:
        """The position tuples currently carrying a cached index (for tests/stats)."""
        return tuple(sorted(self._indexes))

    def invalidate_indexes(self) -> None:
        """Drop every cached index without touching the rows."""
        self._indexes.clear()

    # -- queries ---------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation name from its schema."""
        return self.schema.name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self.schema.arity

    def rows(self) -> FrozenSet[Row]:
        """An immutable snapshot of the tuples."""
        return frozenset(self._rows)

    def sorted_rows(self) -> Tuple[Row, ...]:
        """Tuples in a deterministic order (useful for printing and tests)."""
        return tuple(sorted(self._rows, key=repr))

    def __contains__(self, row: Sequence[Value]) -> bool:
        try:
            validated = self.schema.validate_tuple(row)
        except IntegrityError:
            return False
        return validated in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema.name == other.schema.name and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - relations used as dict keys rarely
        return hash((self.schema.name, frozenset(self._rows)))

    def column(self, attribute: str) -> Set[Value]:
        """All distinct values of ``attribute``."""
        index = self.schema.index_of(attribute)
        return {row[index] for row in self._rows}

    def active_domain(self) -> Set[Value]:
        """All constants appearing anywhere in the relation."""
        return {value for row in self._rows for value in row}

    def copy(self) -> "Relation":
        """A shallow, independent copy."""
        return Relation(self.schema, self._rows)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.schema.name}, {len(self._rows)} tuples)"

    def pretty(self, limit: Optional[int] = 20) -> str:
        """A small textual table, used by the examples."""
        header = " | ".join(self.schema.attribute_names)
        lines = [header, "-" * len(header)]
        rows = self.sorted_rows()
        shown = rows if limit is None else rows[:limit]
        for row in shown:
            lines.append(" | ".join(str(v) for v in row))
        if limit is not None and len(rows) > limit:
            lines.append(f"... ({len(rows) - limit} more)")
        return "\n".join(lines)


class Database:
    """A collection of relations; the item collection ``D`` of the paper."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        for relation in relations:
            self.add_relation(relation)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_schema(cls, schema: DatabaseSchema) -> "Database":
        """An empty database with one empty relation per schema entry."""
        return cls(Relation(rel_schema) for rel_schema in schema)

    def add_relation(self, relation: Relation) -> None:
        """Register a relation; duplicate names are rejected."""
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation: {relation.name!r}")
        self._relations[relation.name] = relation

    def create_relation(
        self, name: str, attributes: Sequence[str], rows: Iterable[Sequence[Value]] = ()
    ) -> Relation:
        """Create, register and return a new relation."""
        relation = Relation(RelationSchema(name, attributes), rows)
        self.add_relation(relation)
        return relation

    # -- access ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """The relation called ``name``; raises :class:`UnknownRelationError`."""
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> Tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def relations(self) -> Tuple[Relation, ...]:
        """All relations, sorted by name."""
        return tuple(self._relations[name] for name in self.relation_names())

    def schema(self) -> DatabaseSchema:
        """The database schema induced by the registered relations."""
        return DatabaseSchema(rel.schema for rel in self.relations())

    # -- statistics -----------------------------------------------------------------
    def size(self) -> int:
        """Total number of tuples; the ``|D|`` of the paper."""
        return sum(len(rel) for rel in self._relations.values())

    def __len__(self) -> int:
        return self.size()

    def active_domain(self) -> Set[Value]:
        """All constants appearing in any relation (``adom(D)``)."""
        domain: Set[Value] = set()
        for relation in self._relations.values():
            domain |= relation.active_domain()
        return domain

    def version(self) -> Tuple[Tuple[str, int], ...]:
        """A snapshot of every relation's mutation counter.

        Two equal snapshots of the same :class:`Database` object guarantee the
        contents have not changed in between; caches keyed on database contents
        (e.g. the compatibility oracle) compare snapshots to invalidate.  The
        snapshot relies on dict insertion order, which is stable per object —
        snapshots of *different* databases are not comparable.
        """
        return tuple((name, relation.version) for name, relation in self._relations.items())

    def invalidate_indexes(self) -> None:
        """Drop every cached hash index in every relation (rows are untouched)."""
        for relation in self._relations.values():
            relation.invalidate_indexes()

    # -- copying / combining -----------------------------------------------------------
    def copy(self) -> "Database":
        """A deep-enough copy: relations are copied, tuples are shared."""
        return Database(rel.copy() for rel in self._relations.values())

    def with_relation(self, relation: Relation) -> "Database":
        """A copy of this database with ``relation`` added or replaced.

        Used to evaluate compatibility constraints, which mention both the
        database relations and the answer relation ``RQ`` holding a candidate
        package.
        """
        new = Database()
        for name, rel in self._relations.items():
            if name != relation.name:
                new.add_relation(rel)
        new.add_relation(relation)
        return new

    def without_relation(self, name: str) -> "Database":
        """A copy of this database with relation ``name`` removed."""
        new = Database()
        for rel_name, rel in self._relations.items():
            if rel_name != name:
                new.add_relation(rel)
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if self.relation_names() != other.relation_names():
            return False
        return all(
            self._relations[name].rows() == other._relations[name].rows()
            for name in self._relations
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"Database({parts})"
