"""Relations and databases.

A :class:`Relation` is a named, schema-checked set of tuples; a
:class:`Database` is a collection of relations.  Both are the concrete
counterparts of the paper's item collection ``D``.

Relations are set-semantics (no duplicates), matching the paper's model where
packages are subsets of the query answer ``Q(D)``.

Relations additionally maintain *lazy hash indexes*: for any tuple of
attribute positions, :meth:`Relation.index_on` builds (once) and caches a map
from position-values to the rows carrying them, and :meth:`Relation.probe`
answers point lookups through it.  The join planner in
:mod:`repro.queries.plan` uses these indexes to turn full relation scans into
hash probes whenever a variable is already bound.  Three further lazy caches
serve the cost-based planner: *sorted indexes*
(:meth:`Relation.sorted_index_on` / :meth:`Relation.range_rows`) answer
ground range predicates (``price < 30``) with bisections instead of scans,
*composite trie indexes* (:meth:`Relation.trie_index_on`) nest several
positions in a caller-chosen variable order for the worst-case-optimal
multiway join, and *statistics* (:meth:`Relation.statistics`: cardinality
plus per-position distinct counts and heavy-hitter frequencies) drive the
planner's selectivity estimates.  Every mutation
bumps the relation's :attr:`Relation.version`; point mutations
(:meth:`Relation.add`, :meth:`Relation.discard`) additionally maintain all
cached structures *in place* — the delta-maintenance subsystem streams
single-tuple updates, and paying an O(rows) rebuild per update would defeat
its O(|Δ|) budget — while bulk mutations (:meth:`Relation.clear`,
:meth:`Relation.replace_rows`) drop them wholesale.  Either way a stale cache
can never serve a query; caches keyed on database contents (e.g. the
compatibility oracle) compare :meth:`Database.version` snapshots to detect
change.

:meth:`Database.apply_delta` is the in-place transaction primitive on top:
apply a set of modifications, get back an :class:`AppliedDelta` undo token.

On top of the version counters and the delta transactions sits *snapshot
isolation* (PR 6): :meth:`Database.snapshot` returns an immutable
:class:`DatabaseSnapshot` pinned to the database's current *epoch*.  Every
committing transaction (:meth:`Database.apply_delta` or an
:class:`AppliedDelta` undo) first performs **copy-on-write at relation
granularity**: any relation referenced by a live snapshot is cloned before it
is mutated, so the snapshot keeps the untouched original — including every
lazy index and statistic ever built on it, which can never go stale because
the pinned relation objects are simply never mutated again — while relations
no snapshot pinned are updated in place exactly as before.  Readers holding a
snapshot therefore resolve rows, hash/sorted/trie indexes, statistics and
(through the compatibility oracle's version checks) ``Qc`` verdicts against
their pinned epoch, concurrently with a writer committing new epochs.  The
copy-on-write guard covers the transactional write path only: direct
:meth:`Relation.add`/:meth:`Relation.discard` calls on a live relation bypass
it, so concurrent serving must funnel writes through :meth:`apply_delta`.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Set, Tuple

from repro.relational.errors import (
    IntegrityError,
    ModelError,
    SchemaError,
    SnapshotViolationError,
    UnknownRelationError,
)
from repro.relational.columnar import ColumnarRelation
from repro.relational.ordering import row_sort_key
from repro.relational.schema import DatabaseSchema, RelationSchema, Value
from repro.observability import metrics as _metrics
from repro.relational.statistics import RelationStatistics, SortedPositionIndex, TrieIndex
from repro.resilience import faults as _faults

Row = Tuple[Value, ...]

#: The opt-in snapshot-safety guard (see :func:`set_snapshot_safety_guard`):
#: when enabled, direct point/bulk mutations on a relation pinned by a live
#: snapshot raise :class:`~repro.relational.errors.SnapshotViolationError`
#: instead of silently corrupting the snapshot's frozen view.
_DIRECT_MUTATION_GUARD = False


def set_snapshot_safety_guard(enabled: bool) -> bool:
    """Enable/disable the snapshot-safety debug guard; returns the old value.

    The transactional write path (:meth:`Database.apply_delta`) performs
    copy-on-write for snapshot-pinned relations, but direct
    :meth:`Relation.add` / :meth:`Relation.discard` / :meth:`Relation.clear` /
    :meth:`Relation.replace_rows` calls bypass it — the ROADMAP's known scope
    limit.  With the guard on, such a call on a pinned relation raises
    :class:`~repro.relational.errors.SnapshotViolationError`, turning the
    silent corruption into detection.  Off (the default) is bit-identical to
    the historical behaviour.  Process-global, like the chaos harness.
    """
    global _DIRECT_MUTATION_GUARD
    previous = _DIRECT_MUTATION_GUARD
    _DIRECT_MUTATION_GUARD = bool(enabled)
    return previous


@contextmanager
def snapshot_safety_guard(enabled: bool = True) -> Iterator[None]:
    """Scope the snapshot-safety guard to a ``with`` block (tests, debugging)."""
    previous = set_snapshot_safety_guard(enabled)
    try:
        yield
    finally:
        set_snapshot_safety_guard(previous)

#: One delta modification: ("insert" | "delete", relation name, tuple).  The
#: same shape as :data:`repro.adjustment.delta.Modification`; the relational
#: layer duck-types it so it does not depend on the adjustment package.
DeltaModification = Tuple[str, str, Row]

_DELTA_INSERT = "insert"
_DELTA_DELETE = "delete"

#: Double-fault rehearsal point: fires before each modification is reversed
#: inside :meth:`Database._unwind_commit`, modelling a crash *during* the
#: crash handler.  Registered here, next to the call site, per the ROADMAP
#: recipe.
_FAULT_COMMIT_UNWIND = _faults.register_fault_point("commit.unwind")


class AppliedDelta:
    """Undo token for an in-place :meth:`Database.apply_delta` transaction.

    Records the modifications that *actually changed* the database (inserting
    a present tuple or deleting an absent one is a no-op under set semantics
    and is not recorded), in application order.  :meth:`undo` replays the
    inverse modifications in reverse order, restoring the exact pre-delta row
    sets; version counters keep moving forward (an undo is itself a mutation),
    so caches keyed on :meth:`Database.version` snapshots never see time run
    backwards.

    Also usable as a context manager: ``with database.apply_delta(delta): ...``
    undoes the delta on exit.
    """

    __slots__ = ("database", "effective", "_undone")

    def __init__(self, database: "Database", effective: Tuple[DeltaModification, ...]) -> None:
        self.database = database
        self.effective = effective
        self._undone = False

    def __len__(self) -> int:
        return len(self.effective)

    def undo(self) -> None:
        """Revert the effective modifications (idempotent)."""
        if self._undone:
            return
        self._undone = True
        self.database._apply_validated(
            tuple(
                (_DELTA_DELETE if kind == _DELTA_INSERT else _DELTA_INSERT, name, row)
                for kind, name, row in reversed(self.effective)
            )
        )

    def __enter__(self) -> "AppliedDelta":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.undo()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "undone" if self._undone else "applied"
        return f"AppliedDelta({len(self.effective)} effective modifications, {state})"


class Relation:
    """A finite set of tuples over a :class:`RelationSchema`."""

    __slots__ = (
        "schema",
        "_rows",
        "_indexes",
        "_sorted_indexes",
        "_trie_indexes",
        "_columnar",
        "_stats",
        "_stats_max",
        "_stats_snapshot",
        "_version",
        "_pinned_by",
        "__weakref__",
    )

    def __init__(self, schema: RelationSchema, rows: Iterable[Sequence[Value]] = ()) -> None:
        self.schema = schema
        #: Live snapshots pinning this exact relation object (weakly), kept by
        #: :meth:`Database.snapshot` purely for the opt-in snapshot-safety
        #: guard — the commit path's copy-on-write decision still consults the
        #: database's snapshot registry, not this set.
        self._pinned_by: "weakref.WeakSet" = weakref.WeakSet()
        self._rows: Set[Row] = set()
        self._indexes: Dict[Tuple[int, ...], Dict[Tuple[Value, ...], Tuple[Row, ...]]] = {}
        self._sorted_indexes: Dict[int, SortedPositionIndex] = {}
        self._trie_indexes: Dict[Tuple[int, ...], TrieIndex] = {}
        self._columnar: Optional[ColumnarRelation] = None
        self._stats: Optional[list] = None
        #: Per-position max frequency, maintained alongside ``_stats``; a
        #: ``None`` entry is dirty (a deletion removed a row of the maximal
        #: value) and is recomputed lazily at the next snapshot.
        self._stats_max: Optional[list] = None
        self._stats_snapshot: Optional[Tuple[int, RelationStatistics]] = None
        self._version = 0
        for row in rows:
            self.add(row)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_dicts(
        cls, schema: RelationSchema, rows: Iterable[Mapping[str, Value]]
    ) -> "Relation":
        """Build a relation from attribute-name keyed dictionaries."""
        relation = cls(schema)
        for row in rows:
            relation.add(schema.tuple_from_mapping(row))
        return relation

    # -- mutation -------------------------------------------------------------
    def _check_direct_mutation(self, operation: str) -> None:
        """The opt-in snapshot-safety guard: reject mutating a pinned relation.

        Only direct mutators call this; the transactional commit path
        (:meth:`Database._apply_validated`) clones pinned relations first and
        mutates the unpinned clone, so it never trips the guard.
        """
        if _DIRECT_MUTATION_GUARD and self._pinned_by:
            raise SnapshotViolationError(
                f"direct {operation} on relation {self.name!r} while "
                f"{len(self._pinned_by)} live snapshot(s) pin it; route the "
                f"write through Database.apply_delta (copy-on-write) instead"
            )

    def _mutated(self) -> None:
        """Record a bulk change to the row set: bump the version, drop caches."""
        self._version += 1
        if self._indexes:
            self._indexes.clear()
        if self._sorted_indexes:
            self._sorted_indexes.clear()
        if self._trie_indexes:
            self._trie_indexes.clear()
        self._columnar = None
        self._stats = None
        self._stats_max = None

    def _index_added_row(self, row: Row) -> None:
        """Fold one inserted row into every cached index (O(indexes), not O(rows))."""
        for key, index in self._indexes.items():
            values = tuple(row[p] for p in key)
            index[values] = index.get(values, ()) + (row,)

    def _index_removed_row(self, row: Row) -> None:
        """Remove one row from every cached index."""
        for key, index in self._indexes.items():
            values = tuple(row[p] for p in key)
            bucket = tuple(r for r in index.get(values, ()) if r != row)
            if bucket:
                index[values] = bucket
            else:
                index.pop(values, None)

    def _caches_added_row(self, row: Row) -> None:
        """Maintain every lazy cache in place after one point insertion."""
        if self._indexes:
            self._index_added_row(row)
        for position, index in self._sorted_indexes.items():
            index.add(row[position])
        for trie in self._trie_indexes.values():
            trie.add(row)
        if self._columnar is not None:
            self._columnar.add(row)
        if self._stats is not None:
            for position, counts in enumerate(self._stats):
                value = row[position]
                count = counts.get(value, 0) + 1
                counts[value] = count
                current = self._stats_max[position]
                if current is not None and count > current:
                    self._stats_max[position] = count

    def _caches_removed_row(self, row: Row) -> None:
        """Maintain every lazy cache in place after one point deletion."""
        if self._indexes:
            self._index_removed_row(row)
        for position, index in self._sorted_indexes.items():
            index.remove(row[position])
        for trie in self._trie_indexes.values():
            trie.remove(row)
        if self._columnar is not None:
            self._columnar.remove(row)
        if self._stats is not None:
            for position, counts in enumerate(self._stats):
                value = row[position]
                remaining = counts.get(value, 0) - 1
                if remaining > 0:
                    counts[value] = remaining
                else:
                    counts.pop(value, None)
                # Removing a row of the maximal value may or may not lower
                # the max (another value can share it); mark the position
                # dirty and recompute lazily at the next snapshot, keeping
                # the per-delta maintenance cost O(arity).
                if self._stats_max[position] == remaining + 1:
                    self._stats_max[position] = None

    def add(self, row: Sequence[Value]) -> Row:
        """Insert a tuple (validated against the schema) and return it.

        A *point* mutation: the version is bumped and the cached hash indexes
        are maintained in place (the row is folded into each bucket), so a
        stream of single-tuple deltas never pays an O(rows) index rebuild.
        """
        validated = self.schema.validate_tuple(row)
        if validated not in self._rows:
            self._check_direct_mutation("add")
            self._rows.add(validated)
            self._version += 1
            self._caches_added_row(validated)
        return validated

    def add_all(self, rows: Iterable[Sequence[Value]]) -> None:
        """Insert every tuple in ``rows``."""
        for row in rows:
            self.add(row)

    def discard(self, row: Sequence[Value]) -> bool:
        """Remove a tuple if present; return whether it was present.

        Like :meth:`add`, maintains the cached indexes in place.
        """
        validated = self.schema.validate_tuple(row)
        if validated in self._rows:
            self._check_direct_mutation("discard")
            self._rows.remove(validated)
            self._version += 1
            self._caches_removed_row(validated)
            return True
        return False

    def clear(self) -> None:
        """Remove every tuple."""
        if self._rows:
            self._check_direct_mutation("clear")
            self._rows.clear()
            self._mutated()

    def replace_rows(self, rows: Iterable[Row]) -> None:
        """Replace the whole row set in place, skipping per-tuple validation.

        This is the trusted bulk-update behind the reusable ``Qc`` probe view:
        the caller guarantees ``rows`` are schema-valid plain tuples (e.g. rows
        drawn from another relation, or the items of a
        :class:`~repro.core.packages.Package` over the same schema).  The
        mutation contract is preserved — the version counter is bumped, and as
        a *bulk* mutation the cached indexes are dropped wholesale (point
        mutations maintain them instead) — so index caches and the
        compatibility oracle can never serve stale state through this path.
        """
        self._check_direct_mutation("replace_rows")
        self._rows = set(rows)
        self._mutated()

    # -- hash indexes -----------------------------------------------------------
    @property
    def version(self) -> int:
        """A counter incremented on every mutation of the row set.

        Caches derived from the rows (hash indexes, memoized compatibility
        verdicts) compare versions to detect staleness.
        """
        return self._version

    def _validated_positions(self, positions: Sequence[int]) -> Tuple[int, ...]:
        key = tuple(positions)
        for position in key:
            if not 0 <= position < self.schema.arity:
                raise SchemaError(
                    f"relation {self.name!r}: index position {position} outside "
                    f"arity {self.schema.arity}"
                )
        return key

    def index_on(
        self, positions: Sequence[int]
    ) -> Mapping[Tuple[Value, ...], Tuple[Row, ...]]:
        """The hash index on ``positions``: position-values → rows carrying them.

        Built on first use and cached; point mutations keep it current in
        place, bulk mutations drop it for a lazy rebuild.  An empty
        ``positions`` tuple is rejected — that would be a full copy of the
        relation masquerading as an index.
        """
        key = self._validated_positions(positions)
        if not key:
            raise SchemaError(f"relation {self.name!r}: cannot index on zero positions")
        index = self._indexes.get(key)
        if index is None:
            buckets: Dict[Tuple[Value, ...], list] = {}
            for row in self._rows:
                buckets.setdefault(tuple(row[p] for p in key), []).append(row)
            index = {values: tuple(rows) for values, rows in buckets.items()}
            self._indexes[key] = index
        return index

    def index_on_attributes(
        self, attributes: Sequence[str]
    ) -> Mapping[Tuple[Value, ...], Tuple[Row, ...]]:
        """:meth:`index_on` addressed by attribute names instead of positions."""
        return self.index_on(tuple(self.schema.index_of(a) for a in attributes))

    def probe(self, positions: Sequence[int], values: Sequence[Value]) -> Tuple[Row, ...]:
        """All rows whose ``positions`` carry exactly ``values`` (via the index)."""
        return self.index_on(positions).get(tuple(values), ())

    def indexed_position_sets(self) -> Tuple[Tuple[int, ...], ...]:
        """The position tuples currently carrying a cached index (for tests/stats)."""
        return tuple(sorted(self._indexes))

    def invalidate_indexes(self) -> None:
        """Drop every cached index (hash, sorted, trie, columnar); rows untouched."""
        self._indexes.clear()
        self._sorted_indexes.clear()
        self._trie_indexes.clear()
        self._columnar = None

    # -- sorted indexes and statistics ------------------------------------------
    def sorted_index_on(self, position: int) -> SortedPositionIndex:
        """The sorted index on ``position``: distinct values in bisectable order.

        Built on first use and cached under the same contract as the hash
        indexes — point mutations maintain it in place, bulk mutations drop
        it.  The planner's range probes drive it through :meth:`range_rows`.
        """
        (key,) = self._validated_positions((position,))
        index = self._sorted_indexes.get(key)
        if index is None:
            index = SortedPositionIndex(row[key] for row in self._rows)
            self._sorted_indexes[key] = index
        return index

    def sorted_indexed_positions(self) -> Tuple[int, ...]:
        """The positions currently carrying a cached sorted index (for tests)."""
        return tuple(sorted(self._sorted_indexes))

    def trie_index_on(self, positions: Sequence[int]) -> TrieIndex:
        """The composite trie index nesting ``positions`` in the given order.

        The access path behind the worst-case-optimal multiway join: level
        ``i`` of the trie holds the sorted distinct values of
        ``positions[i]`` among the rows matching the path so far, so the
        leapfrog executor can intersect one level per participating atom.
        Built on first use and cached per position *order* (the same
        positions in a different order are a different trie), under the same
        contract as every other lazy cache — point mutations maintain it in
        place, bulk mutations drop it.  A value outside the orderable
        families at any level marks the trie dead (:attr:`TrieIndex.ok`
        false) and the executor falls back to the binary plan.
        """
        key = self._validated_positions(positions)
        if not key:
            raise SchemaError(f"relation {self.name!r}: cannot build a trie on zero positions")
        trie = self._trie_indexes.get(key)
        if trie is None:
            trie = TrieIndex(key, self._rows)
            self._trie_indexes[key] = trie
        return trie

    def trie_indexed_position_sets(self) -> Tuple[Tuple[int, ...], ...]:
        """The position tuples currently carrying a cached trie (for tests)."""
        return tuple(sorted(self._trie_indexes))

    def columnar(self) -> Optional[ColumnarRelation]:
        """The columnar encoding, or ``None`` when it declines.

        The vectorized access path behind the executor's ``use_columnar``
        knob: stdlib ``array`` columns (dictionary-encoded strings) the
        selection kernels run over instead of the tuple set.  Built on first
        use and cached under the standard contract — point mutations maintain
        it in place (O(arity) append / swap-remove), bulk mutations drop it —
        and a value family it cannot encode exactly marks it dead: the dead
        encoding is kept (so the decline is not re-derived per query) but
        this accessor answers ``None`` and the executor stays on the
        tuple-set reference path.
        """
        encoding = self._columnar
        if encoding is None:
            encoding = ColumnarRelation(self.schema.arity, self._rows)
            self._columnar = encoding
            active = _metrics._ACTIVE
            if active is not None:
                active.inc("columnar.builds" if encoding.ok else "columnar.declines")
        return encoding if encoding.ok else None

    def range_rows(
        self, position: int, op_symbol: str, bound: Value
    ) -> Optional[Tuple[Row, ...]]:
        """All rows whose ``position`` value satisfies ``value <op> bound``.

        The access path behind the planner's range probes: two bisections on
        the sorted index select the qualifying distinct values, and the hash
        index on ``position`` supplies their rows.  Returns ``None`` when the
        sorted index cannot answer exactly (mixed-type column, unsupported
        value family) — the caller must fall back to a scan, which reproduces
        the reference semantics including any ``TypeError``.
        """
        values = self.sorted_index_on(position).range_values(op_symbol, bound)
        if values is None:
            return None
        buckets = self.index_on((position,))
        rows: list = []
        for value in values:
            rows.extend(buckets.get((value,), ()))
        return tuple(rows)

    def statistics(self) -> RelationStatistics:
        """A snapshot of cardinality, per-position distinct counts and degrees.

        The backing per-position value counts are built lazily on first use
        and maintained in place by point mutations (bulk mutations drop
        them), so a stream of single-tuple deltas keeps statistics current in
        O(arity) per update.  The snapshot itself is immutable and hashable —
        the plan cache keys compiled plans on it — and is memoized per
        version, so repeated probes of an unchanged relation pay nothing for
        the per-position max-frequency maximums.
        """
        snapshot = self._stats_snapshot
        if snapshot is not None and snapshot[0] == self._version:
            return snapshot[1]
        if self._stats is None:
            counts: list = [dict() for _ in range(self.schema.arity)]
            for row in self._rows:
                for position, value in enumerate(row):
                    column = counts[position]
                    column[value] = column.get(value, 0) + 1
            # ``_stats_max`` before ``_stats``: a concurrent reader (a pinned
            # snapshot shares frozen relations across threads) that observes
            # ``_stats`` non-None must never find ``_stats_max`` still None.
            self._stats_max = [None] * self.schema.arity
            self._stats = counts
        maxes = self._stats_max
        for position, current in enumerate(maxes):
            if current is None:  # fresh build, or dirtied by a deletion
                maxes[position] = max(self._stats[position].values(), default=0)
        stats = RelationStatistics(
            self.name,
            len(self._rows),
            tuple(len(column) for column in self._stats),
            tuple(maxes),
        )
        self._stats_snapshot = (self._version, stats)
        return stats

    # -- queries ---------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation name from its schema."""
        return self.schema.name

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return self.schema.arity

    def rows(self) -> FrozenSet[Row]:
        """An immutable snapshot of the tuples."""
        return frozenset(self._rows)

    def sorted_rows(self) -> Tuple[Row, ...]:
        """Tuples in a deterministic order (useful for printing and tests)."""
        return tuple(sorted(self._rows, key=row_sort_key))

    def __contains__(self, row: Sequence[Value]) -> bool:
        try:
            validated = self.schema.validate_tuple(row)
        except IntegrityError:
            return False
        return validated in self._rows

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.schema.name == other.schema.name and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - relations used as dict keys rarely
        return hash((self.schema.name, frozenset(self._rows)))

    def column(self, attribute: str) -> Set[Value]:
        """All distinct values of ``attribute``."""
        index = self.schema.index_of(attribute)
        return {row[index] for row in self._rows}

    def active_domain(self) -> Set[Value]:
        """All constants appearing anywhere in the relation."""
        return {value for row in self._rows for value in row}

    def copy(self) -> "Relation":
        """A shallow, independent copy."""
        return Relation(self.schema, self._rows)

    def _cow_clone(self) -> "Relation":
        """The copy-on-write clone taken before mutating a snapshot-pinned relation.

        Unlike :meth:`copy` — which re-validates rows and restarts the version
        counter at the row count — the clone *preserves the version counter*:
        the clone replaces the original inside the live database, and caches
        keyed on :meth:`Database.version` snapshots (the compatibility oracle)
        must not observe time jumping when the swap itself changed no rows.
        Rows are shared as a fresh set over the same tuples; every lazy cache
        starts empty (the original keeps its built indexes for its snapshot
        readers, the clone rebuilds on demand for the live writer).
        """
        clone = Relation.__new__(Relation)
        clone.schema = self.schema
        clone._pinned_by = weakref.WeakSet()  # the clone is, by construction, unpinned
        clone._rows = set(self._rows)
        clone._indexes = {}
        clone._sorted_indexes = {}
        clone._trie_indexes = {}
        clone._columnar = None
        clone._stats = None
        clone._stats_max = None
        clone._stats_snapshot = None
        clone._version = self._version
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.schema.name}, {len(self._rows)} tuples)"

    def pretty(self, limit: Optional[int] = 20) -> str:
        """A small textual table, used by the examples."""
        header = " | ".join(self.schema.attribute_names)
        lines = [header, "-" * len(header)]
        rows = self.sorted_rows()
        shown = rows if limit is None else rows[:limit]
        for row in shown:
            lines.append(" | ".join(str(v) for v in row))
        if limit is not None and len(rows) > limit:
            lines.append(f"... ({len(rows) - limit} more)")
        return "\n".join(lines)


class Database:
    """A collection of relations; the item collection ``D`` of the paper."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        #: Monotone commit counter: bumped by every effective delta commit.
        self._epoch = 0
        #: The attached write-ahead log, or ``None`` (the default: purely
        #: in-memory, bit-identical to the pre-durability behaviour).  Set by
        #: :meth:`attach_wal`; deliberately not inherited by :meth:`copy`.
        self._wal = None
        #: Live snapshots pinning relation objects (weakly: a dropped snapshot
        #: stops forcing copy-on-write).  Guarded by ``_snapshot_lock``, which
        #: serialises commits against snapshot creation so a snapshot can
        #: never observe a half-applied delta.
        self._snapshots: "weakref.WeakSet[DatabaseSnapshot]" = weakref.WeakSet()
        self._snapshot_lock = threading.RLock()
        for relation in relations:
            self.add_relation(relation)

    # -- construction -----------------------------------------------------------
    @classmethod
    def from_schema(cls, schema: DatabaseSchema) -> "Database":
        """An empty database with one empty relation per schema entry."""
        return cls(Relation(rel_schema) for rel_schema in schema)

    def add_relation(self, relation: Relation) -> None:
        """Register a relation; duplicate names are rejected."""
        with self._snapshot_lock:
            if relation.name in self._relations:
                raise SchemaError(f"duplicate relation: {relation.name!r}")
            self._relations[relation.name] = relation

    def create_relation(
        self, name: str, attributes: Sequence[str], rows: Iterable[Sequence[Value]] = ()
    ) -> Relation:
        """Create, register and return a new relation."""
        relation = Relation(RelationSchema(name, attributes), rows)
        self.add_relation(relation)
        return relation

    # -- access ------------------------------------------------------------------
    def relation(self, name: str) -> Relation:
        """The relation called ``name``; raises :class:`UnknownRelationError`."""
        # ``relational.access`` injection point, inlined (this is the hottest
        # lookup in the library): chaos off costs one module-attribute load.
        active = _faults._ACTIVE
        if active is not None:
            active.hit("relational.access")
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def __getitem__(self, name: str) -> Relation:
        return self.relation(name)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def relation_names(self) -> Tuple[str, ...]:
        """All relation names, sorted."""
        return tuple(sorted(self._relations))

    def relations(self) -> Tuple[Relation, ...]:
        """All relations, sorted by name."""
        return tuple(self._relations[name] for name in self.relation_names())

    def schema(self) -> DatabaseSchema:
        """The database schema induced by the registered relations."""
        return DatabaseSchema(rel.schema for rel in self.relations())

    # -- statistics -----------------------------------------------------------------
    def size(self) -> int:
        """Total number of tuples; the ``|D|`` of the paper."""
        return sum(len(rel) for rel in self._relations.values())

    def __len__(self) -> int:
        return self.size()

    def active_domain(self) -> Set[Value]:
        """All constants appearing in any relation (``adom(D)``)."""
        domain: Set[Value] = set()
        for relation in self._relations.values():
            domain |= relation.active_domain()
        return domain

    def version(self) -> Tuple[Tuple[str, int], ...]:
        """A snapshot of every relation's mutation counter.

        Two equal snapshots of the same :class:`Database` object guarantee the
        contents have not changed in between; caches keyed on database contents
        (e.g. the compatibility oracle) compare snapshots to invalidate.  The
        snapshot relies on dict insertion order, which is stable per object —
        snapshots of *different* databases are not comparable.
        """
        return tuple((name, relation.version) for name, relation in self._relations.items())

    def invalidate_indexes(self) -> None:
        """Drop every cached hash index in every relation (rows are untouched)."""
        for relation in self._relations.values():
            relation.invalidate_indexes()

    # -- snapshot isolation ------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """The commit counter: how many effective delta commits have landed.

        Every :meth:`apply_delta` (and every :meth:`AppliedDelta.undo`) that
        actually changed a row set advances the epoch by one; no-op deltas do
        not.  :meth:`snapshot` pins the current epoch.
        """
        return self._epoch

    def snapshot(self) -> "DatabaseSnapshot":
        """An immutable view of the database pinned to the current epoch.

        The snapshot shares the live :class:`Relation` objects by reference —
        taking one is O(relations), never O(rows) — and the commit path's
        copy-on-write guard guarantees those objects are never mutated again
        while the snapshot is alive: a later commit touching a pinned relation
        swaps a clone into the live database and leaves the pinned original
        frozen.  Reads, index builds and statistics on the snapshot therefore
        always answer as of the pinned epoch, concurrently with a committing
        writer.  Snapshots are tracked weakly; dropping every reference to one
        lifts its copy-on-write protection.
        """
        with self._snapshot_lock:
            snapshot = DatabaseSnapshot(self, self._epoch, dict(self._relations))
            self._snapshots.add(snapshot)
            for relation in self._relations.values():
                relation._pinned_by.add(snapshot)
            active = _metrics._ACTIVE
            if active is not None:
                active.inc("database.snapshots_pinned")
            return snapshot

    def _copy_on_write(self, names: Iterable[str]) -> None:
        """Clone every about-to-be-mutated relation that a live snapshot pins.

        Called under ``_snapshot_lock`` by the commit path.  A relation is
        pinned iff some live snapshot holds the *same object*; the clone
        (:meth:`Relation._cow_clone`) replaces it in the live database, so the
        mutation lands on the clone and the snapshot keeps the frozen
        original.  Relations no snapshot pins are mutated in place — the
        single-user fast path of PRs 1-5 is unchanged when no snapshot exists.
        """
        snapshots = tuple(self._snapshots)
        if not snapshots:
            return
        for name in names:
            relation = self._relations.get(name)
            if relation is None:
                continue
            if any(snap._relations.get(name) is relation for snap in snapshots):
                self._relations[name] = relation._cow_clone()
                active = _metrics._ACTIVE
                if active is not None:
                    active.inc("database.cow_clones")

    # -- durability --------------------------------------------------------------------
    def attach_wal(self, wal) -> None:
        """Attach a :class:`~repro.durability.wal.WriteAheadLog` to the commit path.

        Every subsequent *effective* commit appends one epoch-stamped record
        (inside the commit's critical section, so record order equals epoch
        order) and blocks on the log's fsync before :meth:`apply_delta`
        returns — the return is the durability ack.  A failed append unwinds
        the in-memory commit exactly like any other mid-commit fault; a
        failed fsync leaves the commit applied but unacknowledged (retrying
        the same delta is a natural no-op).  Attach before serving begins:
        the commit path reads the attachment unlocked.  ``wal=None`` —
        never attaching — is the knob-contract off position, bit-identical
        to the in-memory behaviour.
        """
        self._wal = wal

    def detach_wal(self):
        """Detach and return the current WAL (``None`` if none attached)."""
        wal, self._wal = self._wal, None
        return wal

    @property
    def wal(self):
        """The attached write-ahead log, or ``None``."""
        return self._wal

    # -- in-place deltas ---------------------------------------------------------------
    def validate_delta(
        self, modifications: Iterable[DeltaModification]
    ) -> Tuple[DeltaModification, ...]:
        """Check a delta against the schema without applying anything.

        Every row is validated against its target relation's arity/types and
        domains; malformed modifications raise :class:`ModelError` naming the
        offending modification instead of failing deep inside
        :meth:`Relation.add` mid-application.  Returns the modifications with
        their rows normalised to validated plain tuples.
        """
        validated: list = []
        for modification in modifications:
            kind, name, row = modification
            if kind not in (_DELTA_INSERT, _DELTA_DELETE):
                raise ModelError(f"unknown modification kind: {kind!r}")
            relation = self.relation(name)
            try:
                checked = relation.schema.validate_tuple(row)
            except IntegrityError as error:
                raise ModelError(
                    f"invalid {kind} into relation {name!r}: {error}"
                ) from error
            validated.append((kind, name, checked))
        return tuple(validated)

    def apply_delta(self, modifications: Iterable[DeltaModification]) -> AppliedDelta:
        """Apply a delta *in place* and return an :class:`AppliedDelta` undo token.

        The whole delta is schema-validated up front (see
        :meth:`validate_delta`), so a malformed modification raises
        :class:`ModelError` before any row set changes.  Modifications are then
        applied in order; only relations actually touched have their version
        counters bumped, so indexes and verdict caches keyed off untouched
        relations survive the transaction.  The token records the effective
        modifications and reverts them with :meth:`AppliedDelta.undo` (or on
        context-manager exit).
        """
        return self._apply_validated(self.validate_delta(modifications))

    def _apply_validated(
        self, validated: Sequence[DeltaModification]
    ) -> AppliedDelta:
        """Apply modifications already normalised by :meth:`validate_delta`.

        The O(|Δ|) inner loop behind :meth:`apply_delta` and the incremental
        subsystem's per-modification transactions — callers guarantee the
        rows are validated plain tuples so no schema work is repeated here.

        This is the *commit* of the snapshot-isolation story: the whole
        application runs under the snapshot lock, pinned relations are cloned
        first (:meth:`_copy_on_write`), and an effective commit advances the
        epoch — so a snapshot taken at any moment sees either none or all of
        the delta, never a prefix.

        The commit is also *crash-safe*: if anything raises mid-application
        (the ``commit.modification`` / ``commit.epoch`` chaos points model an
        arbitrary failure), the already-applied prefix is unwound in reverse
        before the exception propagates, restoring rows, caches, version
        counters and the epoch to their exact pre-commit values — a failed
        commit leaves no trace.  Copy-on-write clones swapped in before the
        crash are kept (they are content-identical after the unwind, and
        snapshot readers pin the originals regardless).

        With a WAL attached (:meth:`attach_wal`), an effective commit also
        appends its record inside the critical section — still inside the
        ``try``, so a failed append (disk full, ``wal.append`` chaos) unwinds
        the in-memory prefix and the commit leaves no trace in memory *or*
        log — and then blocks on the log's fsync **after** releasing the
        snapshot lock, which is what lets concurrent commits batch into one
        fsync (group commit) without serialising on the disk.
        """
        wal = self._wal
        ticket = None
        with self._snapshot_lock:
            self._copy_on_write({name for _, name, _ in validated})
            effective: list = []
            epoch_bumped = False
            try:
                for kind, name, row in validated:
                    relation = self._relations[name]
                    _faults.fault_point("commit.modification")
                    if kind == _DELTA_INSERT:
                        if row not in relation._rows:
                            relation._rows.add(row)
                            relation._version += 1
                            relation._caches_added_row(row)
                            effective.append((kind, name, row))
                    else:
                        if row in relation._rows:
                            relation._rows.remove(row)
                            relation._version += 1
                            relation._caches_removed_row(row)
                            effective.append((kind, name, row))
                if effective:
                    self._epoch += 1
                    epoch_bumped = True
                    _faults.fault_point("commit.epoch")
                    if wal is not None:
                        ticket = wal.append(self._epoch, effective)
            except BaseException:
                self._unwind_commit(effective, epoch_bumped)
                raise
            # Counted only here, past every fault point: an unwound commit
            # leaves no trace in the database and none in the metrics either.
            if epoch_bumped:
                active = _metrics._ACTIVE
                if active is not None:
                    active.inc("database.commits")
            applied = AppliedDelta(self, tuple(effective))
            if ticket is not None and wal.sync_in_commit:
                # The classical fsync-per-commit log forces the disk before
                # the commit releases its lock: the ack is part of the
                # commit's critical section.  A raise here (fsync failure,
                # ``wal.fsync`` chaos) loses the *ack*, not the commit — the
                # delta is already applied and past the unwind.
                wal.sync(ticket)
                ticket = None
        if ticket is not None:
            # Outside the lock: the ack waits for durability, the next
            # writer does not — concurrent commits append behind the
            # leader's in-flight fsync and batch into one (group commit).
            # A raise here (fsync failure, ``wal.fsync`` chaos) loses the
            # *ack*, not the commit — the delta is applied in memory and
            # its record is in the OS buffer; recovery keeps it iff the
            # bytes reached the disk.
            wal.sync(ticket)
        return applied

    def _unwind_commit(
        self, effective: Sequence[DeltaModification], epoch_bumped: bool
    ) -> None:
        """Roll back a partially applied commit (called under the snapshot lock).

        Inverts the effective prefix in reverse order through the same
        in-place cache maintenance the forward path used, and *decrements*
        the version counters it bumped.  Winding a version counter backwards
        is sound exactly here: the row set is restored to the same content
        the old version number described, so every (version, content) pair a
        cache may have memoized stays truthful.

        The ``commit.unwind`` fault point fires before each reversal: a
        *double fault* (crashing inside the crash handler) leaves the
        in-memory database poisoned mid-rollback — which is exactly why the
        durability layer never logs un-committed work, so ``recover()``
        still lands on the last acked epoch (rehearsed in the chaos suite).
        """
        for kind, name, row in reversed(effective):
            _faults.fault_point(_FAULT_COMMIT_UNWIND)
            relation = self._relations[name]
            if kind == _DELTA_INSERT:
                relation._rows.remove(row)
                relation._caches_removed_row(row)
            else:
                relation._rows.add(row)
                relation._caches_added_row(row)
            relation._version -= 1
        if epoch_bumped:
            self._epoch -= 1

    # -- copying / combining -----------------------------------------------------------
    def copy(self) -> "Database":
        """A deep-enough copy: relations are copied, tuples are shared."""
        return Database(rel.copy() for rel in self._relations.values())

    def with_relation(self, relation: Relation) -> "Database":
        """A copy of this database with ``relation`` added or replaced.

        Used to evaluate compatibility constraints, which mention both the
        database relations and the answer relation ``RQ`` holding a candidate
        package.
        """
        new = Database()
        for name, rel in self._relations.items():
            if name != relation.name:
                new.add_relation(rel)
        new.add_relation(relation)
        return new

    def without_relation(self, name: str) -> "Database":
        """A copy of this database with relation ``name`` removed."""
        new = Database()
        for rel_name, rel in self._relations.items():
            if rel_name != name:
                new.add_relation(rel)
        return new

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Database):
            return NotImplemented
        if self.relation_names() != other.relation_names():
            return False
        return all(
            self._relations[name].rows() == other._relations[name].rows()
            for name in self._relations
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"Database({parts})"


class DatabaseSnapshot(Database):
    """An immutable :class:`Database` view pinned to one epoch of its source.

    Produced by :meth:`Database.snapshot`.  Shares the source's
    :class:`Relation` objects by reference; the source's commit path clones
    any of them before mutating (copy-on-write), so this view's contents —
    rows, lazy indexes, statistics, version counters — are frozen at the
    pinned :attr:`epoch` forever.  All read APIs of :class:`Database` work
    unchanged; the mutating APIs raise :class:`ModelError`.  To branch a
    mutable database off a snapshot (e.g. for a serial re-execution check),
    use :meth:`Database.copy`, which is inherited and returns a plain
    independent :class:`Database`.

    The immutability also makes every per-snapshot lazy structure a
    *per-epoch* structure: an index or statistics snapshot built through this
    view can be shared freely between reader threads at the same epoch and
    never needs invalidation.
    """

    #: Snapshots hash by identity (``Database.__eq__`` would otherwise make
    #: them unhashable): the source tracks them in a ``WeakSet``, and two
    #: snapshots are distinct pins even when their contents are equal.
    __hash__ = object.__hash__

    def __init__(self, source: Database, epoch: int, relations: Dict[str, Relation]) -> None:
        # Deliberately no super().__init__(): the relations dict is installed
        # directly (the names were validated when they entered the source),
        # and a snapshot needs no lock or snapshot registry of its own.
        self._relations = relations
        self._source = source
        self._pinned_epoch = epoch

    @property
    def epoch(self) -> int:
        """The source epoch this snapshot is pinned to."""
        return self._pinned_epoch

    @property
    def plan_epoch(self) -> Tuple[int, int]:
        """The component the plan cache keys compiled plans on for this view.

        ``(id(source), epoch)``: plans resolved through a snapshot are cached
        per source database *and* per epoch, so two readers pinned to the same
        epoch share compiled plans while readers on different epochs never
        collide.  The live :class:`Database` exposes no ``plan_epoch`` (the
        attribute probe yields ``None``), keeping the single-user cache
        behaviour of PRs 4-5 byte-identical.
        """
        return (id(self._source), self._pinned_epoch)

    def source(self) -> Database:
        """The live database this snapshot was taken from."""
        return self._source

    def snapshot(self) -> "DatabaseSnapshot":
        """A snapshot of a snapshot is itself (already immutable and pinned)."""
        return self

    # -- the write surface is closed -----------------------------------------------
    def _immutable(self, operation: str) -> "ModelError":
        return ModelError(
            f"DatabaseSnapshot is immutable: cannot {operation} on a view "
            f"pinned to epoch {self._pinned_epoch}; mutate the source "
            f"database (via apply_delta) and take a new snapshot instead"
        )

    def add_relation(self, relation: Relation) -> None:
        raise self._immutable("add a relation")

    def create_relation(
        self, name: str, attributes: Sequence[str], rows: Iterable[Sequence[Value]] = ()
    ) -> Relation:
        raise self._immutable("create a relation")

    def apply_delta(self, modifications: Iterable[DeltaModification]) -> AppliedDelta:
        raise self._immutable("apply a delta")

    def _apply_validated(self, validated: Sequence[DeltaModification]) -> AppliedDelta:
        raise self._immutable("apply a delta")

    def invalidate_indexes(self) -> None:
        # Dropping caches on *shared* relation objects would not corrupt
        # anything, but it would silently degrade the source database and
        # every sibling snapshot — reject it like the mutations.
        raise self._immutable("invalidate indexes")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"DatabaseSnapshot(epoch={self._pinned_epoch}, {parts})"
