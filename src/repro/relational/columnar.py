"""Per-position columnar encoding of a relation, with vectorized kernels.

At million-tuple scale the tuple-set executor pays interpreter dispatch per
row: every scan step funnels each candidate tuple through the Python row
matcher and the comparison schedule.  :class:`ColumnarRelation` re-encodes a
relation column by column — stdlib :mod:`array` columns for ints, floats and
booleans, dictionary encoding for strings — so the scan/filter inner loops
can run as a handful of vectorized operations over contiguous buffers
(NumPy when importable, a pure-Python loop over the same columns otherwise)
instead of one interpreter round-trip per row.

The encoding is a lazy structure on
:class:`~repro.relational.database.Relation` under the standing maintenance
contract shared by the hash/sorted/trie indexes and the statistics:

* built on first use (:meth:`Relation.columnar`), cached on the relation;
* maintained *in place* by point mutations and ``apply_delta`` streams —
  :meth:`add` appends one row to every column, :meth:`remove` swap-removes
  it, both O(arity), so undo round-trips restore the exact encoded contents;
* dropped wholesale by bulk mutations (``clear`` / ``replace_rows``);
* **declining** on value families it cannot encode exactly: each column must
  hold one exact type family (``bool``, int-within-int64, ``float`` or
  ``str``) — a mixed or unsupported column marks the whole encoding dead
  (:attr:`ok` false) and the tuple-set path stays the semantic reference.

The families are deliberately *exact-type*, unlike the sorted indexes'
numeric family: the encoding must round-trip values bit-exactly (``1`` must
never come back as ``1.0``), so ``bool``/``int``/``float`` are three
distinct families here even though they compare numerically.

Honesty of the kernels mirrors the range probes: :meth:`select` applies a
pushed-down predicate only when its bound shares the column's exact family
(where NumPy/Python comparison semantics provably agree); anything else is
simply *not applied* — the predicate stays in the executor's comparison
schedule, which rechecks every surfaced row, so a comparison that would
raise ``TypeError`` under a scan still raises, and a cross-family numeric
bound is still decided by Python's exact arithmetic.  Kernels therefore
surface a superset of the matching rows and never filter where the
reference path would error.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.relational.schema import Value

try:  # optional acceleration; every kernel has a pure-Python fallback
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

Row = Tuple[Value, ...]

#: Exact-type column families.  ``bool`` is checked before ``int`` (it is a
#: subclass) and ints must fit a signed 64-bit machine word to encode.
FAMILY_BOOL = "bool"
FAMILY_INT = "int"
FAMILY_FLOAT = "float"
FAMILY_STR = "str"

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1

#: array typecode per family; string columns store dictionary codes.
_TYPECODES = {FAMILY_BOOL: "b", FAMILY_INT: "q", FAMILY_FLOAT: "d", FAMILY_STR: "q"}

_NUMPY_DTYPES = (
    {FAMILY_BOOL: "int8", FAMILY_INT: "int64", FAMILY_FLOAT: "float64", FAMILY_STR: "int64"}
    if _np is not None
    else {}
)


def value_family(value: Value) -> Optional[str]:
    """The exact-type column family of a value, or ``None`` if unencodable."""
    kind = type(value)
    if kind is bool:
        return FAMILY_BOOL
    if kind is int:
        return FAMILY_INT if _INT64_MIN <= value <= _INT64_MAX else None
    if kind is float:
        return FAMILY_FLOAT
    if kind is str:
        return FAMILY_STR
    return None


class ColumnarRelation:
    """The per-position columnar encoding of one relation's row set.

    ``_rows_list`` keeps the original row tuples in column order, so kernels
    yield the very objects the tuple-set path would — no decode on the hot
    path (decoding exists for the round-trip property tests only).
    ``_positions`` maps each row to its slot, which is what makes point
    deletion an O(arity) swap-remove instead of an O(rows) rebuild; the
    internal order is therefore maintenance-history dependent, and all
    equality checks on encodings must be order-insensitive.
    """

    __slots__ = (
        "arity",
        "_rows_list",
        "_positions",
        "_families",
        "_columns",
        "_codes",
        "_decode",
        "_ok",
    )

    def __init__(self, arity: int, rows: Iterable[Row] = ()) -> None:
        self.arity = arity
        self._rows_list: List[Row] = []
        self._positions: Dict[Row, int] = {}
        #: Per-column family, fixed by the first row encoded.
        self._families: List[Optional[str]] = [None] * arity
        self._columns: List[array] = []
        #: Per-column string dictionary (value → code); ``None`` off str columns.
        self._codes: List[Optional[Dict[str, int]]] = [None] * arity
        #: The inverse dictionaries (code → value), for decoding.
        self._decode: List[Optional[List[str]]] = [None] * arity
        # A nullary relation has nothing to vectorize over; decline up front
        # so the executor's membership-test semantics stay on the row set.
        self._ok = arity > 0
        for row in rows:
            self.add(row)
            if not self._ok:
                break

    @property
    def ok(self) -> bool:
        """Whether the encoding can serve kernels at all."""
        return self._ok

    def __len__(self) -> int:
        return len(self._rows_list)

    def _mark_dead(self) -> None:
        self._ok = False
        self._rows_list = []
        self._positions = {}
        self._columns = []

    # -- point maintenance ----------------------------------------------------
    def add(self, row: Row) -> None:
        """Append one inserted row to every column (O(arity))."""
        if not self._ok:
            return
        if not self._rows_list:
            # First row — or first after the last removal: (re-)fix the
            # column families, so an emptied encoding accepts whatever a
            # fresh build from the same (empty) row set would.
            families = [value_family(value) for value in row]
            if None in families:
                self._mark_dead()
                return
            self._families = families
            self._columns = [array(_TYPECODES[family]) for family in families]
            self._codes = [None] * self.arity
            self._decode = [None] * self.arity
            for position, family in enumerate(families):
                if family is FAMILY_STR:
                    self._codes[position] = {}
                    self._decode[position] = []
        encoded: List[object] = []
        for position, value in enumerate(row):
            if value_family(value) != self._families[position]:
                self._mark_dead()
                return
            if self._families[position] is FAMILY_STR:
                codes = self._codes[position]
                code = codes.get(value)
                if code is None:
                    code = codes[value] = len(codes)
                    self._decode[position].append(value)
                encoded.append(code)
            else:
                encoded.append(value)
        for column, item in zip(self._columns, encoded):
            column.append(item)
        self._positions[row] = len(self._rows_list)
        self._rows_list.append(row)

    def remove(self, row: Row) -> None:
        """Swap-remove one deleted row from every column (O(arity))."""
        if not self._ok:
            return
        index = self._positions.pop(row, None)
        if index is None:  # pragma: no cover - adds and removes are paired
            return
        last = len(self._rows_list) - 1
        if index != last:
            moved = self._rows_list[last]
            self._rows_list[index] = moved
            self._positions[moved] = index
            for column in self._columns:
                column[index] = column[last]
        del self._rows_list[last]
        for column in self._columns:
            del column[last]

    # -- kernels ---------------------------------------------------------------
    def _column_view(self, position: int):
        """The column as a NumPy view over the array's buffer (zero-copy)."""
        return _np.frombuffer(
            memoryview(self._columns[position]), dtype=_NUMPY_DTYPES[self._families[position]]
        )

    def _predicate_mask(self, position: int, op_symbol: str, bound: Value):
        """A boolean mask for ``column[position] <op> bound``, or ``None``.

        ``None`` declines the predicate: the bound's exact family differs
        from the column's (NumPy promotion or cross-family semantics could
        then diverge from Python's per-row arithmetic), so the caller leaves
        it to the executor's comparison schedule.  An applied mask is exact —
        same-family ``int64``/``float64``/string comparisons agree with
        Python bit for bit (NaN included: incomparable under both).
        """
        family = self._families[position]
        if value_family(bound) != family:
            return None
        if family is FAMILY_STR:
            codes = self._codes[position]
            if op_symbol == "=":
                code = codes.get(bound)
                qualifying = [code] if code is not None else []
            else:
                # Ordering over strings: decide each distinct dictionary
                # value in Python (exact lexicographic semantics), then match
                # codes — O(distinct) Python work, O(rows) vector work.
                compare = {
                    "<": lambda v: v < bound,
                    "<=": lambda v: v <= bound,
                    ">": lambda v: v > bound,
                    ">=": lambda v: v >= bound,
                }.get(op_symbol)
                if compare is None:
                    return None
                qualifying = [
                    code for code, value in enumerate(self._decode[position]) if compare(value)
                ]
            if _np is not None:
                view = self._column_view(position)
                if not qualifying:
                    return _np.zeros(len(view), dtype=bool)
                if len(qualifying) == 1:
                    return view == qualifying[0]
                return _np.isin(view, _np.asarray(qualifying, dtype="int64"))
            wanted = set(qualifying)
            return [code in wanted for code in self._columns[position]]
        target = int(bound) if family is FAMILY_BOOL else bound
        if _np is not None:
            view = self._column_view(position)
            if op_symbol == "<":
                return view < target
            if op_symbol == "<=":
                return view <= target
            if op_symbol == ">":
                return view > target
            if op_symbol == ">=":
                return view >= target
            if op_symbol == "=":
                return view == target
            return None
        compare = {
            "<": lambda v: v < target,
            "<=": lambda v: v <= target,
            ">": lambda v: v > target,
            ">=": lambda v: v >= target,
            "=": lambda v: v == target,
        }.get(op_symbol)
        if compare is None:
            return None
        return [compare(value) for value in self._columns[position]]

    def select(
        self, predicates: Sequence[Tuple[int, str, Value]]
    ) -> Optional[Tuple[Row, ...]]:
        """Rows satisfying every *applicable* pushed-down predicate.

        ``predicates`` are ``(position, op_symbol, bound)`` triples.  Each is
        applied only when :meth:`_predicate_mask` can answer it exactly;
        inapplicable predicates are skipped, so the result is a superset of
        the rows satisfying all of them — the executor's row matcher and
        comparison schedule recheck every surfaced row, preserving reference
        semantics (including ``TypeError`` on family-mismatched predicates).
        Returns ``None`` only when the encoding is dead.
        """
        if not self._ok:
            return None
        rows = self._rows_list
        if not rows:
            return ()
        mask = None
        for position, op_symbol, bound in predicates:
            predicate_mask = self._predicate_mask(position, op_symbol, bound)
            if predicate_mask is None:
                continue
            if mask is None:
                mask = predicate_mask
            elif _np is not None:
                mask &= predicate_mask
            else:
                mask = [a and b for a, b in zip(mask, predicate_mask)]
        if mask is None:
            return tuple(rows)
        if _np is not None:
            return tuple(rows[int(i)] for i in _np.nonzero(mask)[0])
        return tuple(row for row, keep in zip(rows, mask) if keep)

    def match_rows(
        self,
        const_eqs: Sequence[Tuple[int, Value]],
        pair_eqs: Sequence[Tuple[int, int]],
    ) -> Optional[Tuple[Row, ...]]:
        """The vectorized atom-match filter behind the semi-join passes.

        ``const_eqs`` are ``(position, value)`` equality constraints
        (constants in the atom, or variables ground under the initial
        binding); ``pair_eqs`` are ``(position, position)`` equalities from
        repeated variables.  Same-family constraints are decided exactly;
        a cross-family constant can equal nothing in an exact-family column
        *except* across the numeric families (``True == 1 == 1.0``), where
        NumPy promotion could diverge from Python's exact arithmetic — those
        decline (return ``None``) and the caller falls back to the row-wise
        matcher.  Every surfaced row is re-matched by the executor, so a
        superset is safe; a subset never is, hence the declines.
        """
        if not self._ok:
            return None
        rows = self._rows_list
        if not rows:
            return ()
        numeric = (FAMILY_BOOL, FAMILY_INT, FAMILY_FLOAT)
        mask = None

        def conjoin(mask, predicate_mask):
            if mask is None:
                return predicate_mask
            if _np is not None:
                mask &= predicate_mask
                return mask
            return [a and b for a, b in zip(mask, predicate_mask)]

        for position, value in const_eqs:
            family = value_family(value)
            column_family = self._families[position]
            if family != column_family:
                if family in numeric and column_family in numeric:
                    return None  # exact cross-numeric equality: Python decides
                if family is None:
                    return None  # arbitrary __eq__: only the matcher is exact
                return ()  # disjoint families (e.g. str vs int): nothing matches
            predicate_mask = self._predicate_mask(position, "=", value)
            if predicate_mask is None:  # pragma: no cover - families match above
                return None
            mask = conjoin(mask, predicate_mask)
        for left, right in pair_eqs:
            if self._families[left] != self._families[right]:
                return None  # cross-family row equality: Python decides
            if self._families[left] is FAMILY_STR:
                # Per-column dictionaries assign codes independently, so raw
                # code equality across columns is meaningless: translate the
                # left column's codes into the right column's code space
                # (O(distinct) Python work; -1 marks values the right column
                # never saw, which no right code can equal).
                right_codes = self._codes[right]
                translation = [
                    right_codes.get(value, -1) for value in self._decode[left]
                ]
                if _np is not None:
                    translated = _np.asarray(translation, dtype="int64")[
                        self._column_view(left)
                    ]
                    predicate_mask = translated == self._column_view(right)
                else:
                    predicate_mask = [
                        translation[a] == b
                        for a, b in zip(self._columns[left], self._columns[right])
                    ]
            elif _np is not None:
                predicate_mask = self._column_view(left) == self._column_view(right)
            else:
                predicate_mask = [
                    a == b for a, b in zip(self._columns[left], self._columns[right])
                ]
            mask = conjoin(mask, predicate_mask)
        if mask is None:
            return tuple(rows)
        if _np is not None:
            return tuple(rows[int(i)] for i in _np.nonzero(mask)[0])
        return tuple(row for row, keep in zip(rows, mask) if keep)

    # -- round-trip / introspection (tests) ------------------------------------
    def families(self) -> Tuple[Optional[str], ...]:
        """The per-column families (``None`` before the first row fixes them)."""
        return tuple(self._families)

    def decoded_rows(self) -> Tuple[Row, ...]:
        """Every row decoded from the columns, in internal (swap) order.

        The round-trip the property tests pin: decoding must reproduce the
        original tuples exactly, types included (``bool`` columns come back
        as ``bool``, never ``int``; string codes resolve through the
        dictionary).
        """
        if not self._ok:
            return ()
        decoded: List[Row] = []
        for index in range(len(self._rows_list)):
            values: List[Value] = []
            for position, family in enumerate(self._families):
                raw = self._columns[position][index]
                if family is FAMILY_BOOL:
                    values.append(bool(raw))
                elif family is FAMILY_STR:
                    values.append(self._decode[position][raw])
                else:
                    values.append(raw)
            decoded.append(tuple(values))
        return tuple(decoded)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "ok" if self._ok else "declined"
        return f"ColumnarRelation(arity={self.arity}, {len(self._rows_list)} rows, {state})"
