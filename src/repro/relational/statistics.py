"""Maintained relation statistics, sorted per-position indexes and tries.

The cost-based join planner (:mod:`repro.queries.plan`) needs three things
from the storage layer that the lazy hash indexes cannot provide:

* **Statistics** — how many rows a relation holds, how many *distinct*
  values each attribute position carries, and how often the *most frequent*
  value of each position occurs (the heavy-hitter degree bound behind the
  planner's worst-case intermediate estimates).  :class:`RelationStatistics`
  is the immutable snapshot the planner consumes; the backing per-position
  value counts live on the :class:`~repro.relational.database.Relation` and
  follow the same maintenance contract as the hash indexes (point mutations
  update them in place, bulk mutations drop them for a lazy rebuild).

* **Sorted indexes** — a :class:`SortedPositionIndex` keeps the distinct
  values of one attribute position in sorted order so a ground one-sided
  comparison (``price < 30``, ``start >= d``) can be answered with two
  bisections instead of a full scan.  Row retrieval for the values inside the
  range goes through the relation's existing hash index on that position, so
  the two index families share their buckets.

* **Composite trie indexes** — a :class:`TrieIndex` nests the distinct values
  of *several* attribute positions, in a caller-chosen variable order, with
  the values at every level kept sorted.  This is the storage side of the
  worst-case-optimal multiway join: the leapfrog executor intersects the
  sorted child lists of one trie level per participating atom instead of
  materialising binary intermediate results.

Range probes must be *exactly* equivalent to post-filtering a scan, including
error behaviour: a scan over a column mixing strings and numbers raises
``TypeError`` when the comparison is evaluated, so
:meth:`SortedPositionIndex.range_values` refuses (returns ``None``) unless the
whole column shares the probe value's type family.  Only numbers
(bool/int/float compare numerically) and strings are served; anything else —
tuples, user objects, NaN — permanently disables the index until the next
rebuild and the executor falls back to scanning.  :class:`TrieIndex` follows
the same honesty rule: a value outside the supported families at *any* level
marks the whole trie dead (:attr:`TrieIndex.ok` false) so the multiway
executor declines and the binary plan reproduces reference semantics.

Under snapshot isolation (PR 6) all three structures double as *per-epoch*
caches for free: a :class:`~repro.relational.database.DatabaseSnapshot` pins
its relation objects, the commit path's copy-on-write guarantees a pinned
relation is never mutated again, so any statistics snapshot, sorted index or
trie built through a snapshot describes its pinned epoch forever and may be
shared between reader threads without invalidation.  The maintenance contract
above applies to the *live* relation (or its copy-on-write clone) only.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.relational.schema import Value

#: Type families a sorted index can order totally and consistently with the
#: comparison predicates' own semantics.  ``bool`` joins the numeric family
#: because Python compares it numerically (``True < 30``).
_TAG_NUMBER = "num"
_TAG_STRING = "str"


def order_key(value: Value) -> Optional[Tuple[str, Value]]:
    """The sorted-index key of a value, or ``None`` when unsupported.

    Supported values map to ``(family, value)`` pairs: all numbers compare
    numerically within the ``num`` family (so ``1``, ``1.0`` and ``True`` sort
    together, matching ``==``/``<`` semantics), strings lexicographically
    within ``str``.  NaN is rejected — it would break the total order bisect
    relies on.
    """
    if isinstance(value, (bool, int, float)):
        if isinstance(value, float) and value != value:  # NaN
            return None
        return (_TAG_NUMBER, value)
    if isinstance(value, str):
        return (_TAG_STRING, value)
    return None


@dataclass(frozen=True)
class RelationStatistics:
    """A cheap snapshot of one relation's planner-relevant statistics.

    ``distinct_counts[p]`` is the number of distinct values at attribute
    position ``p``; ``max_frequencies[p]`` is the number of rows carrying the
    most frequent value there (the degree bound worst-case intermediate
    estimates multiply by).  Snapshots are immutable and hashable, which is
    what lets the plan cache key compiled plans directly on the statistics
    they were costed with (two databases with identical statistics share
    plans — a plan is semantically valid for *any* database, statistics only
    steer cost).
    """

    relation: str
    cardinality: int
    distinct_counts: Tuple[int, ...]
    max_frequencies: Tuple[int, ...] = ()

    def as_dict(self) -> "dict[str, object]":
        """A JSON-serialisable rendering (benchmark reports embed these)."""
        return {
            "relation": self.relation,
            "cardinality": self.cardinality,
            "distinct_counts": list(self.distinct_counts),
            "max_frequencies": list(self.max_frequencies),
        }

    def distinct(self, position: int) -> int:
        """Distinct values at ``position`` (0 for an empty relation)."""
        return self.distinct_counts[position]

    def max_frequency(self, position: int) -> int:
        """Rows carrying the most frequent value at ``position``.

        Falls back to the cardinality (the trivially correct degree bound)
        when the snapshot predates the heavy-hitter counts.
        """
        if position < len(self.max_frequencies):
            return self.max_frequencies[position]
        return self.cardinality


class SortedPositionIndex:
    """The distinct values of one attribute position, in sorted order.

    Mirrors the hash-index maintenance contract: built once from the live
    rows, then :meth:`add`/:meth:`remove` keep it current under point
    mutations (a value insertion/removal costs one bisect plus an O(distinct)
    list shift — far below the O(rows log rows) rebuild), while bulk mutations
    drop the whole index.  Values whose type family is unsupported mark the
    index dead (:attr:`ok` false) rather than corrupting the order; a dead
    index answers every range query with ``None`` and the executor scans.
    """

    __slots__ = ("_counts", "_keys", "_values", "_ok")

    def __init__(self, values: Iterable[Value] = ()) -> None:
        self._counts: Dict[Value, int] = {}
        self._ok = True
        for value in values:
            self._counts[value] = self._counts.get(value, 0) + 1
        keyed: List[Tuple[Tuple[str, Value], Value]] = []
        for value in self._counts:
            key = order_key(value)
            if key is None:
                self._mark_dead()
                return
            keyed.append((key, value))
        keyed.sort(key=lambda pair: pair[0])
        self._keys: List[Tuple[str, Value]] = [key for key, _ in keyed]
        self._values: List[Value] = [value for _, value in keyed]

    def _mark_dead(self) -> None:
        self._ok = False
        self._keys = []
        self._values = []

    @property
    def ok(self) -> bool:
        """Whether the index can serve range queries at all."""
        return self._ok

    def __len__(self) -> int:
        """Number of distinct values currently indexed."""
        return len(self._counts)

    # -- point maintenance ---------------------------------------------------
    def add(self, value: Value) -> None:
        """Record one more row carrying ``value`` at the indexed position."""
        count = self._counts.get(value, 0)
        self._counts[value] = count + 1
        if count or not self._ok:
            return
        key = order_key(value)
        if key is None:
            self._mark_dead()
            return
        index = bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._values.insert(index, value)

    def remove(self, value: Value) -> None:
        """Record one fewer row carrying ``value`` at the indexed position."""
        count = self._counts.get(value, 0)
        if count > 1:
            self._counts[value] = count - 1
            return
        self._counts.pop(value, None)
        if not self._ok or count == 0:
            return
        key = order_key(value)
        if key is None:  # pragma: no cover - dead indexes never stored the key
            return
        index = bisect_left(self._keys, key)
        # Numerically equal values of different types (1, 1.0) share a key;
        # dict-equal values collapse to one entry, so the first key match with
        # an equal stored value is ours.
        while index < len(self._keys) and self._keys[index] == key:
            if self._values[index] == value:
                del self._keys[index]
                del self._values[index]
                return
            index += 1  # pragma: no cover - equal values collapse in _counts

    # -- range queries -------------------------------------------------------
    def range_values(self, op_symbol: str, bound: Value) -> Optional[List[Value]]:
        """Distinct values satisfying ``value <op> bound``, sorted ascending.

        Returns ``None`` when the index cannot answer *exactly* — unsupported
        bound, a dead index, or a column whose values do not all share the
        bound's type family (a scan would raise ``TypeError`` there, and the
        range probe must not silently succeed where the scan errors).
        """
        if not self._ok:
            return None
        bound_key = order_key(bound)
        if bound_key is None:
            return None
        if self._keys and (
            self._keys[0][0] != bound_key[0] or self._keys[-1][0] != bound_key[0]
        ):
            return None
        if op_symbol == "<":
            return self._values[: bisect_left(self._keys, bound_key)]
        if op_symbol == "<=":
            return self._values[: bisect_right(self._keys, bound_key)]
        if op_symbol == ">":
            return self._values[bisect_right(self._keys, bound_key) :]
        if op_symbol == ">=":
            return self._values[bisect_left(self._keys, bound_key) :]
        if op_symbol == "=":
            return self._values[
                bisect_left(self._keys, bound_key) : bisect_right(self._keys, bound_key)
            ]
        return None


# ---------------------------------------------------------------------------
# Composite trie indexes (the multiway-join access path)
# ---------------------------------------------------------------------------
class TrieNode:
    """One level of a :class:`TrieIndex`: sorted distinct values → children.

    ``_keys`` holds the :func:`order_key` of every child value in sorted
    order, ``_values`` the values themselves in the matching positions —
    exactly the :class:`SortedPositionIndex` layout, so the leapfrog
    executor's sorted intersection and the point lookups
    (:meth:`child`) share one structure.  A leaf node (the last indexed
    position) has no children; :attr:`count` tracks how many rows reach the
    node, which is what lets point deletions prune emptied paths exactly.
    """

    __slots__ = ("_children", "_keys", "_values", "count")

    def __init__(self) -> None:
        self._children: Dict[Value, "TrieNode"] = {}
        self._keys: List[Tuple[str, Value]] = []
        self._values: List[Value] = []
        self.count = 0

    def child(self, value: Value) -> Optional["TrieNode"]:
        """The child reached by ``value``, or ``None`` (a point lookup)."""
        return self._children.get(value)

    def values(self) -> Tuple[Value, ...]:
        """The distinct child values, ascending in :func:`order_key` order."""
        return tuple(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- maintenance ---------------------------------------------------------
    def _ensure_child(self, value: Value) -> Optional["TrieNode"]:
        child = self._children.get(value)
        if child is None:
            key = order_key(value)
            if key is None:
                return None
            child = TrieNode()
            self._children[value] = child
            index = bisect_left(self._keys, key)
            self._keys.insert(index, key)
            self._values.insert(index, value)
        return child

    def _drop_child(self, value: Value) -> None:
        self._children.pop(value, None)
        key = order_key(value)
        if key is None:  # pragma: no cover - unsupported values never stored
            return
        index = bisect_left(self._keys, key)
        while index < len(self._keys) and self._keys[index] == key:
            if self._values[index] == value:
                del self._keys[index]
                del self._values[index]
                return
            index += 1  # pragma: no cover - equal values collapse in the dict


def leapfrog_intersect(nodes: "Sequence[TrieNode]") -> "Iterator[Value]":
    """Values present at *every* node's level, ascending in key order.

    The unified-iterator core of the leapfrog triejoin: one cursor per node,
    the lagging cursors repeatedly seek (bisect) to the largest current key,
    and a value is emitted whenever all cursors agree.  Work is
    O(k · min(level sizes) · log) — independent of the sizes of the larger
    levels, which is what makes the multiway join worst-case optimal.
    """
    if not nodes:
        return
    keys = [node._keys for node in nodes]
    if any(not level for level in keys):
        return
    if len(nodes) == 1:
        yield from nodes[0]._values
        return
    cursors = [0] * len(nodes)
    while True:
        hi = max(keys[i][cursors[i]] for i in range(len(keys)))
        aligned = True
        for i in range(len(keys)):
            if keys[i][cursors[i]] != hi:
                cursors[i] = bisect_left(keys[i], hi, cursors[i])
                if cursors[i] >= len(keys[i]):
                    return
                if keys[i][cursors[i]] != hi:
                    aligned = False
        if not aligned:
            continue
        yield nodes[0]._values[cursors[0]]
        for i in range(len(keys)):
            cursors[i] += 1
            if cursors[i] >= len(keys[i]):
                return


class TrieIndex:
    """Distinct value tuples of several positions, nested in a fixed order.

    The composite index behind the worst-case-optimal multiway join: for
    positions ``(p0, ..., pk)`` the trie's level ``i`` holds the sorted
    distinct values at ``p_i`` among the rows matching the path so far, so a
    leapfrog join can intersect one level per participating atom.  The
    *variable order* is the caller's: the same relation may carry several
    tries over the same positions in different orders
    (:meth:`~repro.relational.database.Relation.trie_index_on` caches one per
    position tuple).

    Maintenance mirrors the sorted-index contract: built once from the live
    rows, :meth:`add`/:meth:`remove` keep it current under point mutations
    (bulk mutations drop the whole trie), and a value outside the supported
    order families at any level marks the trie dead (:attr:`ok` false) —
    dead tries answer nothing and the executor falls back to the binary
    plan, which reproduces reference semantics including ``TypeError``s.
    """

    __slots__ = ("positions", "root", "_ok", "_families")

    def __init__(self, positions: Iterable[int], rows: Iterable[Iterable[Value]] = ()) -> None:
        self.positions = tuple(positions)
        self.root = TrieNode()
        self._ok = True
        #: The order family every value of each level must share; a level
        #: mixing numbers and strings declines like a sorted index does —
        #: the trie must never be the reason a comparison that would raise
        #: ``TypeError`` under a scan silently evaluates.
        self._families: List[Optional[str]] = [None] * len(self.positions)
        for row in rows:
            self.add(row)
            if not self._ok:
                break

    @property
    def ok(self) -> bool:
        """Whether the trie can serve the multiway executor at all."""
        return self._ok

    def _mark_dead(self) -> None:
        self._ok = False
        self.root = TrieNode()

    # -- point maintenance ---------------------------------------------------
    def add(self, row: "Iterable[Value]") -> None:
        """Fold one inserted row's indexed positions into the trie."""
        if not self._ok:
            return
        row = tuple(row)
        node = self.root
        node.count += 1
        for level, position in enumerate(self.positions):
            value = row[position]
            key = order_key(value)
            if key is None or self._families[level] not in (None, key[0]):
                self._mark_dead()
                return
            self._families[level] = key[0]
            node = node._ensure_child(value)
            assert node is not None  # order_key succeeded above
            node.count += 1

    def remove(self, row: "Iterable[Value]") -> None:
        """Remove one row's indexed positions, pruning emptied paths."""
        if not self._ok:
            return
        row = tuple(row)
        node = self.root
        node.count -= 1
        for position in self.positions:
            value = row[position]
            child = node.child(value)
            if child is None:  # pragma: no cover - adds and removes are paired
                return
            child.count -= 1
            if child.count == 0:
                node._drop_child(value)
                return
            node = child

    # -- probes ---------------------------------------------------------------
    def descend(self, values: "Iterable[Value]") -> Optional[TrieNode]:
        """The node reached by following ``values`` from the root, or ``None``.

        ``None`` either because the trie is dead or because no row carries the
        prefix; callers that must distinguish check :attr:`ok` first.
        """
        if not self._ok:
            return None
        node: Optional[TrieNode] = self.root
        for value in values:
            node = node.child(value)
            if node is None:
                return None
        return node

    def as_nested(self) -> "Dict[Value, object] | int":
        """The whole trie as nested ``{value: subtrie}`` dicts with leaf counts.

        A canonical rendering for the maintenance property tests: two tries
        agree iff their nested forms are equal.
        """

        def render(node: TrieNode, depth: int) -> "Dict[Value, object] | int":
            if depth == len(self.positions):
                return node.count
            return {value: render(node.child(value), depth + 1) for value in node.values()}

        return render(self.root, 0)
