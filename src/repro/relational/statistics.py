"""Maintained relation statistics and sorted per-position indexes.

The cost-based join planner (:mod:`repro.queries.plan`) needs two things from
the storage layer that the lazy hash indexes cannot provide:

* **Statistics** — how many rows a relation holds and how many *distinct*
  values each attribute position carries.  :class:`RelationStatistics` is the
  immutable snapshot the planner consumes; the backing per-position value
  counts live on the :class:`~repro.relational.database.Relation` and follow
  the same maintenance contract as the hash indexes (point mutations update
  them in place, bulk mutations drop them for a lazy rebuild).

* **Sorted indexes** — a :class:`SortedPositionIndex` keeps the distinct
  values of one attribute position in sorted order so a ground one-sided
  comparison (``price < 30``, ``start >= d``) can be answered with two
  bisections instead of a full scan.  Row retrieval for the values inside the
  range goes through the relation's existing hash index on that position, so
  the two index families share their buckets.

Range probes must be *exactly* equivalent to post-filtering a scan, including
error behaviour: a scan over a column mixing strings and numbers raises
``TypeError`` when the comparison is evaluated, so
:meth:`SortedPositionIndex.range_values` refuses (returns ``None``) unless the
whole column shares the probe value's type family.  Only numbers
(bool/int/float compare numerically) and strings are served; anything else —
tuples, user objects, NaN — permanently disables the index until the next
rebuild and the executor falls back to scanning.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.relational.schema import Value

#: Type families a sorted index can order totally and consistently with the
#: comparison predicates' own semantics.  ``bool`` joins the numeric family
#: because Python compares it numerically (``True < 30``).
_TAG_NUMBER = "num"
_TAG_STRING = "str"


def order_key(value: Value) -> Optional[Tuple[str, Value]]:
    """The sorted-index key of a value, or ``None`` when unsupported.

    Supported values map to ``(family, value)`` pairs: all numbers compare
    numerically within the ``num`` family (so ``1``, ``1.0`` and ``True`` sort
    together, matching ``==``/``<`` semantics), strings lexicographically
    within ``str``.  NaN is rejected — it would break the total order bisect
    relies on.
    """
    if isinstance(value, (bool, int, float)):
        if isinstance(value, float) and value != value:  # NaN
            return None
        return (_TAG_NUMBER, value)
    if isinstance(value, str):
        return (_TAG_STRING, value)
    return None


@dataclass(frozen=True)
class RelationStatistics:
    """A cheap snapshot of one relation's planner-relevant statistics.

    ``distinct_counts[p]`` is the number of distinct values at attribute
    position ``p``.  Snapshots are immutable and hashable, which is what lets
    the plan cache key compiled plans directly on the statistics they were
    costed with (two databases with identical statistics share plans — a plan
    is semantically valid for *any* database, statistics only steer cost).
    """

    relation: str
    cardinality: int
    distinct_counts: Tuple[int, ...]

    def distinct(self, position: int) -> int:
        """Distinct values at ``position`` (0 for an empty relation)."""
        return self.distinct_counts[position]


class SortedPositionIndex:
    """The distinct values of one attribute position, in sorted order.

    Mirrors the hash-index maintenance contract: built once from the live
    rows, then :meth:`add`/:meth:`remove` keep it current under point
    mutations (a value insertion/removal costs one bisect plus an O(distinct)
    list shift — far below the O(rows log rows) rebuild), while bulk mutations
    drop the whole index.  Values whose type family is unsupported mark the
    index dead (:attr:`ok` false) rather than corrupting the order; a dead
    index answers every range query with ``None`` and the executor scans.
    """

    __slots__ = ("_counts", "_keys", "_values", "_ok")

    def __init__(self, values: Iterable[Value] = ()) -> None:
        self._counts: Dict[Value, int] = {}
        self._ok = True
        for value in values:
            self._counts[value] = self._counts.get(value, 0) + 1
        keyed: List[Tuple[Tuple[str, Value], Value]] = []
        for value in self._counts:
            key = order_key(value)
            if key is None:
                self._mark_dead()
                return
            keyed.append((key, value))
        keyed.sort(key=lambda pair: pair[0])
        self._keys: List[Tuple[str, Value]] = [key for key, _ in keyed]
        self._values: List[Value] = [value for _, value in keyed]

    def _mark_dead(self) -> None:
        self._ok = False
        self._keys = []
        self._values = []

    @property
    def ok(self) -> bool:
        """Whether the index can serve range queries at all."""
        return self._ok

    def __len__(self) -> int:
        """Number of distinct values currently indexed."""
        return len(self._counts)

    # -- point maintenance ---------------------------------------------------
    def add(self, value: Value) -> None:
        """Record one more row carrying ``value`` at the indexed position."""
        count = self._counts.get(value, 0)
        self._counts[value] = count + 1
        if count or not self._ok:
            return
        key = order_key(value)
        if key is None:
            self._mark_dead()
            return
        index = bisect_left(self._keys, key)
        self._keys.insert(index, key)
        self._values.insert(index, value)

    def remove(self, value: Value) -> None:
        """Record one fewer row carrying ``value`` at the indexed position."""
        count = self._counts.get(value, 0)
        if count > 1:
            self._counts[value] = count - 1
            return
        self._counts.pop(value, None)
        if not self._ok or count == 0:
            return
        key = order_key(value)
        if key is None:  # pragma: no cover - dead indexes never stored the key
            return
        index = bisect_left(self._keys, key)
        # Numerically equal values of different types (1, 1.0) share a key;
        # dict-equal values collapse to one entry, so the first key match with
        # an equal stored value is ours.
        while index < len(self._keys) and self._keys[index] == key:
            if self._values[index] == value:
                del self._keys[index]
                del self._values[index]
                return
            index += 1  # pragma: no cover - equal values collapse in _counts

    # -- range queries -------------------------------------------------------
    def range_values(self, op_symbol: str, bound: Value) -> Optional[List[Value]]:
        """Distinct values satisfying ``value <op> bound``, sorted ascending.

        Returns ``None`` when the index cannot answer *exactly* — unsupported
        bound, a dead index, or a column whose values do not all share the
        bound's type family (a scan would raise ``TypeError`` there, and the
        range probe must not silently succeed where the scan errors).
        """
        if not self._ok:
            return None
        bound_key = order_key(bound)
        if bound_key is None:
            return None
        if self._keys and (
            self._keys[0][0] != bound_key[0] or self._keys[-1][0] != bound_key[0]
        ):
            return None
        if op_symbol == "<":
            return self._values[: bisect_left(self._keys, bound_key)]
        if op_symbol == "<=":
            return self._values[: bisect_right(self._keys, bound_key)]
        if op_symbol == ">":
            return self._values[bisect_right(self._keys, bound_key) :]
        if op_symbol == ">=":
            return self._values[bisect_left(self._keys, bound_key) :]
        if op_symbol == "=":
            return self._values[
                bisect_left(self._keys, bound_key) : bisect_right(self._keys, bound_key)
            ]
        return None
