"""Exception hierarchy shared by the whole library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish schema problems from query or model problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation or database schema is malformed or violated."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced that does not exist in the database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that a relation schema does not have."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"relation {relation!r} has no attribute {attribute!r}")
        self.relation = relation
        self.attribute = attribute


class IntegrityError(ReproError):
    """A tuple does not conform to the schema of the relation it is added to."""


class QueryError(ReproError):
    """A query is malformed (unsafe variables, bad arity, unknown predicate)."""


class LanguageError(QueryError):
    """A query does not belong to the query language it was declared in."""


class EvaluationError(ReproError):
    """Query evaluation failed (e.g. resource guard tripped)."""


class ModelError(ReproError):
    """A recommendation problem specification is inconsistent."""


class BudgetExceededError(EvaluationError):
    """A configurable resource guard (time / search nodes) was exceeded."""
