"""Exception hierarchy shared by the whole library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish schema problems from query or model problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A relation or database schema is malformed or violated."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced that does not exist in the database."""

    def __init__(self, name: str) -> None:
        super().__init__(f"unknown relation: {name!r}")
        self.name = name


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that a relation schema does not have."""

    def __init__(self, relation: str, attribute: str) -> None:
        super().__init__(f"relation {relation!r} has no attribute {attribute!r}")
        self.relation = relation
        self.attribute = attribute


class IntegrityError(ReproError):
    """A tuple does not conform to the schema of the relation it is added to."""


class QueryError(ReproError):
    """A query is malformed (unsafe variables, bad arity, unknown predicate)."""


class LanguageError(QueryError):
    """A query does not belong to the query language it was declared in."""


class EvaluationError(ReproError):
    """Query evaluation failed (e.g. resource guard tripped)."""


class ModelError(ReproError):
    """A recommendation problem specification is inconsistent."""


class BudgetExceededError(EvaluationError):
    """A configurable resource guard (time / search nodes) was exceeded."""


class StepLimitExceeded(BudgetExceededError):
    """A :class:`~repro.queries.bindings.StepCounter` hit its step limit.

    Dedicated (rather than a bare :class:`EvaluationError`) so the serving
    layer's error taxonomy can map a step-budget abort to a typed per-request
    error instead of a generic failure; still an :class:`EvaluationError`
    subclass, so historical ``except EvaluationError`` guards keep working.
    """

    def __init__(self, limit: int, steps: int) -> None:
        super().__init__(
            f"evaluation exceeded the step limit of {limit} search steps"
        )
        self.limit = limit
        self.steps = steps


class SnapshotViolationError(ModelError):
    """A direct mutation hit a relation pinned by a live snapshot.

    Raised only when the opt-in snapshot-safety guard
    (:func:`~repro.relational.database.snapshot_safety_guard`) is enabled:
    direct ``Relation.add``/``discard``/``clear``/``replace_rows`` calls
    bypass the copy-on-write commit path, so with a live snapshot pinning the
    relation they would silently corrupt the snapshot's frozen view.  The
    guard turns that silent corruption into detection.
    """
