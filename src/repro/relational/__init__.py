"""In-memory relational database substrate.

The package recommendation model of Deng, Fan and Geerts assumes a relational
database ``D`` of items.  This subpackage provides that substrate: schemas,
typed relations, databases, a small relational-algebra layer used by the query
evaluators, and CSV import/export helpers.
"""

from repro.relational.errors import (
    IntegrityError,
    ReproError,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)
from repro.relational.schema import Attribute, DatabaseSchema, RelationSchema
from repro.relational.database import AppliedDelta, Database, DatabaseSnapshot, Relation
from repro.relational.statistics import RelationStatistics, SortedPositionIndex
from repro.relational.algebra import (
    cartesian_product,
    difference,
    intersection,
    natural_join,
    project,
    rename,
    select,
    union,
)

__all__ = [
    "AppliedDelta",
    "Attribute",
    "Database",
    "DatabaseSchema",
    "DatabaseSnapshot",
    "IntegrityError",
    "Relation",
    "RelationSchema",
    "RelationStatistics",
    "ReproError",
    "SortedPositionIndex",
    "SchemaError",
    "UnknownAttributeError",
    "UnknownRelationError",
    "cartesian_product",
    "difference",
    "intersection",
    "natural_join",
    "project",
    "rename",
    "select",
    "union",
]
