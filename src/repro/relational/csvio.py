"""CSV import/export for relations and databases.

Kept deliberately small: the first row is the header, values are parsed as
``int`` then ``float`` then left as strings.  This is enough to ship the
example workloads as data files and to let users load their own item
collections.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Union

from repro.relational.database import Database, Relation
from repro.relational.schema import RelationSchema, Value

PathLike = Union[str, Path]


def _parse_value(text: str) -> Value:
    """Best-effort scalar parsing: int, then float, then raw string."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def read_relation(path: PathLike, name: str | None = None) -> Relation:
    """Load a relation from a CSV file with a header row."""
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        rows = list(reader)
    if not rows:
        raise ValueError(f"{path}: empty CSV file, expected at least a header row")
    header = rows[0]
    schema = RelationSchema(name or path.stem, header)
    relation = Relation(schema)
    for raw in rows[1:]:
        if not raw:
            continue
        relation.add(tuple(_parse_value(cell) for cell in raw))
    return relation


def write_relation(relation: Relation, path: PathLike) -> None:
    """Write a relation to a CSV file with a header row (deterministic order)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.schema.attribute_names)
        for row in relation.sorted_rows():
            writer.writerow(row)


def read_database(directory: PathLike) -> Database:
    """Load every ``*.csv`` file in ``directory`` as one relation each."""
    directory = Path(directory)
    database = Database()
    for csv_path in sorted(directory.glob("*.csv")):
        database.add_relation(read_relation(csv_path))
    return database


def write_database(database: Database, directory: PathLike) -> None:
    """Write every relation of ``database`` to ``directory`` as CSV files."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation in database.relations():
        write_relation(relation, directory / f"{relation.name}.csv")


def relation_from_rows(name: str, attributes: Iterable[str], rows: Iterable[Iterable[Value]]) -> Relation:
    """Convenience constructor mirroring :func:`read_relation` for in-memory data."""
    return Relation(RelationSchema(name, list(attributes)), [tuple(r) for r in rows])
