"""A small relational-algebra layer.

The query evaluators in :mod:`repro.queries` are implemented directly on
bindings for efficiency, but a classical algebra is still useful for the SP
fragment, for tests (independent cross-checks of the evaluators) and for the
examples.  Operators are pure: they return new :class:`Relation` objects.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.relational.database import Relation, Row
from repro.relational.errors import SchemaError
from repro.relational.schema import RelationSchema, Value

RowPredicate = Callable[[Mapping[str, Value]], bool]


def select(relation: Relation, predicate: RowPredicate, name: Optional[str] = None) -> Relation:
    """``σ_predicate(relation)`` — keep rows satisfying ``predicate``.

    ``predicate`` receives each row as an attribute-name keyed mapping.
    """
    schema = relation.schema if name is None else relation.schema.rename(name)
    result = Relation(schema)
    for row in relation:
        if predicate(relation.schema.as_dict(row)):
            result.add(row)
    return result


def project(
    relation: Relation, attributes: Sequence[str], name: Optional[str] = None
) -> Relation:
    """``π_attributes(relation)`` — keep only the given columns (set semantics)."""
    schema = relation.schema.project(attributes, name=name or relation.schema.name)
    indexes = [relation.schema.index_of(a) for a in attributes]
    result = Relation(schema)
    for row in relation:
        result.add(tuple(row[i] for i in indexes))
    return result


def rename(relation: Relation, new_name: str, attribute_map: Optional[Mapping[str, str]] = None) -> Relation:
    """``ρ`` — rename the relation and optionally some of its attributes."""
    if attribute_map is None:
        attribute_map = {}
    new_attrs = [attribute_map.get(a, a) for a in relation.schema.attribute_names]
    schema = RelationSchema(new_name, new_attrs)
    return Relation(schema, relation.rows())


def _check_union_compatible(left: Relation, right: Relation) -> None:
    if left.arity != right.arity:
        raise SchemaError(
            f"union-incompatible relations: {left.name} has arity {left.arity}, "
            f"{right.name} has arity {right.arity}"
        )


def union(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """``left ∪ right`` over union-compatible relations."""
    _check_union_compatible(left, right)
    schema = left.schema if name is None else left.schema.rename(name)
    result = Relation(schema, left.rows())
    result.add_all(right.rows())
    return result


def intersection(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """``left ∩ right`` over union-compatible relations."""
    _check_union_compatible(left, right)
    schema = left.schema if name is None else left.schema.rename(name)
    return Relation(schema, left.rows() & right.rows())


def difference(left: Relation, right: Relation, name: Optional[str] = None) -> Relation:
    """``left − right`` over union-compatible relations."""
    _check_union_compatible(left, right)
    schema = left.schema if name is None else left.schema.rename(name)
    return Relation(schema, left.rows() - right.rows())


def cartesian_product(left: Relation, right: Relation, name: str = "product") -> Relation:
    """``left × right``; attribute clashes are disambiguated with prefixes."""
    left_names = list(left.schema.attribute_names)
    right_names = list(right.schema.attribute_names)
    out_names = []
    for attr in left_names:
        out_names.append(attr if attr not in right_names else f"{left.name}.{attr}")
    for attr in right_names:
        out_names.append(attr if attr not in left_names else f"{right.name}.{attr}")
    schema = RelationSchema(name, out_names)
    result = Relation(schema)
    for lrow in left:
        for rrow in right:
            result.add(lrow + rrow)
    return result


def natural_join(left: Relation, right: Relation, name: str = "join") -> Relation:
    """``left ⋈ right`` on attributes with equal names.

    Implemented as a hash join on the shared attributes.  Output attributes
    are the left attributes followed by the non-shared right attributes.
    """
    shared = [a for a in left.schema.attribute_names if a in right.schema.attribute_names]
    right_only = [a for a in right.schema.attribute_names if a not in shared]
    schema = RelationSchema(name, list(left.schema.attribute_names) + right_only)

    left_idx = [left.schema.index_of(a) for a in shared]
    right_idx = [right.schema.index_of(a) for a in shared]
    right_only_idx = [right.schema.index_of(a) for a in right_only]

    buckets: dict = {}
    for rrow in right:
        key = tuple(rrow[i] for i in right_idx)
        buckets.setdefault(key, []).append(rrow)

    result = Relation(schema)
    for lrow in left:
        key = tuple(lrow[i] for i in left_idx)
        for rrow in buckets.get(key, ()):
            result.add(lrow + tuple(rrow[i] for i in right_only_idx))
    return result


def aggregate(
    relation: Relation,
    group_by: Sequence[str],
    aggregations: Mapping[str, Callable[[Iterable[Row]], Value]],
    name: str = "aggregate",
) -> Relation:
    """Group-by aggregation.

    ``aggregations`` maps output attribute names to functions applied to the
    full rows of each group.  Used by the workload generators and examples,
    not by the query-language semantics (which follow the paper and keep
    aggregation inside the PTIME ``cost``/``val`` functions).
    """
    group_idx = [relation.schema.index_of(a) for a in group_by]
    groups: dict = {}
    for row in relation:
        key = tuple(row[i] for i in group_idx)
        groups.setdefault(key, []).append(row)
    schema = RelationSchema(name, list(group_by) + list(aggregations))
    result = Relation(schema)
    for key, rows in groups.items():
        agg_values = tuple(fn(rows) for fn in aggregations.values())
        result.add(key + agg_values)
    return result
