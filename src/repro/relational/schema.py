"""Relation and database schemas.

A database is specified by a relational schema ``R = (R1, ..., Rn)`` where
each relation schema ``Ri`` is defined over a fixed list of attributes
(Section 2 of the paper).  Attributes carry an optional domain used for
validation and for query relaxation (which needs per-attribute distance
functions and active domains).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple

from repro.relational.errors import IntegrityError, SchemaError, UnknownAttributeError

#: Values stored in relations.  Any hashable Python value is accepted; the
#: built-in comparison predicates of the query languages additionally require
#: values that support ``<`` within one attribute.
Value = Any


@dataclass(frozen=True)
class Attribute:
    """A single attribute of a relation schema.

    Parameters
    ----------
    name:
        Attribute name, unique within its relation schema.
    domain:
        Optional finite domain.  When given, tuples are validated against it
        and query relaxation uses it as ``dom(R.A)``.
    dtype:
        Optional Python type used for lightweight validation (``int``,
        ``float``, ``str``...).  ``None`` disables type checking.
    """

    name: str
    domain: Optional[Tuple[Value, ...]] = None
    dtype: Optional[type] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.domain is not None and not isinstance(self.domain, tuple):
            object.__setattr__(self, "domain", tuple(self.domain))

    def validate(self, value: Value, relation: str) -> None:
        """Raise :class:`IntegrityError` if ``value`` is not in this attribute."""
        if self.dtype is not None and not isinstance(value, self.dtype):
            raise IntegrityError(
                f"{relation}.{self.name}: value {value!r} is not of type "
                f"{self.dtype.__name__}"
            )
        if self.domain is not None and value not in self.domain:
            raise IntegrityError(
                f"{relation}.{self.name}: value {value!r} not in declared domain"
            )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _as_attribute(spec: "str | Attribute") -> Attribute:
    if isinstance(spec, Attribute):
        return spec
    return Attribute(str(spec))


@dataclass(frozen=True)
class RelationSchema:
    """Schema of one relation: a name plus an ordered list of attributes."""

    name: str
    attributes: Tuple[Attribute, ...]

    def __init__(self, name: str, attributes: Iterable["str | Attribute"]) -> None:
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(_as_attribute(a) for a in attributes)
        seen = set()
        for attr in attrs:
            if attr.name in seen:
                raise SchemaError(
                    f"relation {name!r}: duplicate attribute {attr.name!r}"
                )
            seen.add(attr.name)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)
        # Precomputed once: ``attribute_names`` is on the hot path of the
        # compatibility oracle's cache key (one lookup per lattice node).
        object.__setattr__(self, "_attribute_names", tuple(a.name for a in attrs))

    # -- basic introspection -------------------------------------------------
    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self.attributes)

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """Attribute names in schema order."""
        return self._attribute_names

    def index_of(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema.

        Raises :class:`UnknownAttributeError` for unknown names.
        """
        for i, attr in enumerate(self.attributes):
            if attr.name == attribute:
                return i
        raise UnknownAttributeError(self.name, attribute)

    def attribute(self, name: str) -> Attribute:
        """The :class:`Attribute` called ``name``."""
        return self.attributes[self.index_of(name)]

    def __contains__(self, attribute: str) -> bool:
        return any(a.name == attribute for a in self.attributes)

    # -- tuple handling ------------------------------------------------------
    def validate_tuple(self, values: Sequence[Value]) -> Tuple[Value, ...]:
        """Validate and normalise a tuple against this schema.

        Returns the values as a plain tuple.  Raises :class:`IntegrityError`
        on arity or domain violations.
        """
        values = tuple(values)
        if len(values) != self.arity:
            raise IntegrityError(
                f"relation {self.name!r} has arity {self.arity}, "
                f"got tuple of length {len(values)}"
            )
        for attr, value in zip(self.attributes, values):
            attr.validate(value, self.name)
        return values

    def tuple_from_mapping(self, mapping: Mapping[str, Value]) -> Tuple[Value, ...]:
        """Build a tuple from an attribute-name keyed mapping."""
        missing = [a.name for a in self.attributes if a.name not in mapping]
        if missing:
            raise IntegrityError(
                f"relation {self.name!r}: missing attributes {missing}"
            )
        extra = [k for k in mapping if k not in self.attribute_names]
        if extra:
            raise IntegrityError(f"relation {self.name!r}: unknown attributes {extra}")
        return self.validate_tuple(tuple(mapping[a.name] for a in self.attributes))

    def as_dict(self, values: Sequence[Value]) -> "dict[str, Value]":
        """Expose a tuple as an attribute-name keyed dictionary."""
        values = self.validate_tuple(values)
        return dict(zip(self.attribute_names, values))

    def rename(self, new_name: str) -> "RelationSchema":
        """A copy of this schema under a different relation name."""
        return RelationSchema(new_name, self.attributes)

    def project(self, attributes: Sequence[str], name: Optional[str] = None) -> "RelationSchema":
        """Schema of the projection onto ``attributes`` (kept in given order)."""
        attrs = tuple(self.attribute(a) for a in attributes)
        return RelationSchema(name or self.name, attrs)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        cols = ", ".join(self.attribute_names)
        return f"{self.name}({cols})"


@dataclass
class DatabaseSchema:
    """A collection of relation schemas keyed by relation name."""

    relations: "dict[str, RelationSchema]" = field(default_factory=dict)

    def __init__(self, schemas: Iterable[RelationSchema] = ()) -> None:
        self.relations = {}
        for schema in schemas:
            self.add(schema)

    def add(self, schema: RelationSchema) -> None:
        """Register a relation schema; duplicate names are rejected."""
        if schema.name in self.relations:
            raise SchemaError(f"duplicate relation schema: {schema.name!r}")
        self.relations[schema.name] = schema

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __getitem__(self, name: str) -> RelationSchema:
        try:
            return self.relations[name]
        except KeyError:
            from repro.relational.errors import UnknownRelationError

            raise UnknownRelationError(name) from None

    def names(self) -> Tuple[str, ...]:
        """All relation names, sorted for determinism."""
        return tuple(sorted(self.relations))

    def __iter__(self):
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)
