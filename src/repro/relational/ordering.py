"""Deterministic typed ordering of rows and values.

The enumeration layer and :meth:`~repro.core.packages.Package.sorted_items`
need one total, deterministic order over answer tuples.  Historically that
order was ``sorted(..., key=repr)``: correct for the small examples, but slow
on hot paths (``repr`` builds a string per comparison key) and ambiguous for
distinct values whose reprs collide (e.g. two user-defined objects printing
alike).

:func:`value_sort_key` maps a value to a ``(type-tag, comparable)`` pair:

* booleans, then numbers, sort numerically (``bool`` is tagged separately so
  ``False``/``0`` and ``True``/``1`` stay distinct keys);
* strings sort lexicographically;
* tuples sort element-wise by recursive key;
* anything else falls back to ``(type name, repr)`` — still total and
  deterministic, but no longer on the hot path for the built-in value types
  every workload and reduction actually uses.

Keys of different tags compare by the tag string, so mixed-type columns never
raise ``TypeError`` the way a naive ``sorted(rows)`` would.
"""

from __future__ import annotations

from typing import Tuple

from repro.relational.schema import Value

#: Tag ordering is part of the public sort order; keep the literals stable.
_TAG_BOOL = "0bool"
_TAG_NUMBER = "1num"
_TAG_STRING = "2str"
_TAG_TUPLE = "3tuple"
_TAG_OTHER = "9other:"


def value_sort_key(value: Value) -> Tuple[str, object, str]:
    """A total, deterministic and *injective* sort key for one attribute value.

    Numbers carry a trailing type-name discriminator: ``1`` and ``1.0`` sort
    together numerically but remain distinct keys, so distinct rows can never
    collide the way equal reprs could.
    """
    if isinstance(value, bool):
        return (_TAG_BOOL, value, "bool")
    if isinstance(value, (int, float)):
        return (_TAG_NUMBER, value, type(value).__name__)
    if isinstance(value, str):
        return (_TAG_STRING, value, "str")
    if isinstance(value, tuple):
        return (_TAG_TUPLE, tuple(value_sort_key(element) for element in value), "tuple")
    return (_TAG_OTHER + type(value).__name__, repr(value), "other")


def row_sort_key(row: Tuple[Value, ...]) -> Tuple[Tuple[str, object], ...]:
    """The sort key of a whole tuple: element-wise :func:`value_sort_key`."""
    return tuple(value_sort_key(value) for value in row)
