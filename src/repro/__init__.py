"""repro — a reproduction of "On the Complexity of Package Recommendation Problems".

Deng, Fan and Geerts (PODS 2012 / SIAM J. Comput. 2013) model recommendation
systems that suggest *packages* of items selected by a query, constrained by a
compatibility query and by cost/rating aggregates, and they pin down the
complexity of the associated decision, function and counting problems across
query languages.  This library implements the full model — relational
substrate, the query languages CQ, UCQ, ∃FO+, non-recursive Datalog, FO and
Datalog, the problems RPP/FRP/MBP/CPP plus the query-relaxation (QRPP) and
adjustment (ARPP) recommendations — together with executable versions of the
paper's hardness reductions, domain workloads, and a benchmark harness that
regenerates the shape of the paper's complexity tables.

Quick start::

    from repro import example_1_1_scenario, compute_top_k

    scenario = example_1_1_scenario()
    result = compute_top_k(scenario.package_problem)
    for package in result.selection:
        print(package.sorted_items())

The subpackages:

* :mod:`repro.relational` — relational database substrate
* :mod:`repro.queries` — query languages and evaluators
* :mod:`repro.logic` — SAT/QBF substrate used by the reductions
* :mod:`repro.core` — the recommendation model and RPP/FRP/MBP/CPP
* :mod:`repro.relaxation` — query relaxation recommendations (QRPP)
* :mod:`repro.adjustment` — adjustment recommendations (ARPP)
* :mod:`repro.reductions` — executable hardness reductions
* :mod:`repro.workloads` — travel / course / team / synthetic workloads
* :mod:`repro.complexity` — Tables 8.1 and 8.2 as data
"""

from repro.relational import Database, Relation, RelationSchema
from repro.queries import (
    ConjunctiveQuery,
    DatalogProgram,
    FirstOrderQuery,
    NonRecursiveDatalogProgram,
    PositiveExistentialQuery,
    QueryLanguage,
    SPQuery,
    UnionOfConjunctiveQueries,
    classify_query,
    identity_query,
    identity_query_for,
    parse_cq,
    parse_program,
)
from repro.core import (
    GroupMember,
    GroupRecommendationProblem,
    Package,
    RecommendationProblem,
    Selection,
    beam_search_top_k,
    compute_group_top_k,
    compute_top_k,
    compute_top_k_with_oracle,
    count_valid_packages,
    greedy_top_k,
    is_maximum_bound,
    is_top_k_selection,
    item_recommendation_problem,
    maximum_bound,
    solve_if_tractable,
    top_k_items,
)
from repro.relaxation import RelaxationSpace, find_item_relaxation, find_package_relaxation
from repro.adjustment import Adjustment, find_item_adjustment, find_package_adjustment
from repro.incremental import MaintainedQuery, StreamingQRPP, apply_maintained
from repro.complexity import Problem, render_table_8_1, render_table_8_2
from repro.workloads import (
    course_plan_scenario,
    example_1_1_scenario,
    team_formation_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "Adjustment",
    "ConjunctiveQuery",
    "Database",
    "DatalogProgram",
    "FirstOrderQuery",
    "GroupMember",
    "GroupRecommendationProblem",
    "MaintainedQuery",
    "NonRecursiveDatalogProgram",
    "Package",
    "PositiveExistentialQuery",
    "Problem",
    "QueryLanguage",
    "RecommendationProblem",
    "Relation",
    "RelationSchema",
    "RelaxationSpace",
    "SPQuery",
    "Selection",
    "StreamingQRPP",
    "UnionOfConjunctiveQueries",
    "apply_maintained",
    "beam_search_top_k",
    "classify_query",
    "compute_group_top_k",
    "compute_top_k",
    "compute_top_k_with_oracle",
    "count_valid_packages",
    "course_plan_scenario",
    "example_1_1_scenario",
    "greedy_top_k",
    "solve_if_tractable",
    "find_item_adjustment",
    "find_item_relaxation",
    "find_package_adjustment",
    "find_package_relaxation",
    "identity_query",
    "identity_query_for",
    "is_maximum_bound",
    "is_top_k_selection",
    "item_recommendation_problem",
    "maximum_bound",
    "parse_cq",
    "parse_program",
    "render_table_8_1",
    "render_table_8_2",
    "team_formation_scenario",
    "top_k_items",
    "__version__",
]
