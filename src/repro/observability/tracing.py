"""Per-request span trees with ambient propagation and seeded sampling.

A trace is a tree of :class:`Span` records — ``request`` at the root, with
``admit``, ``snapshot_pin``, ``plan``, ``execute`` and ``probe`` children as
the request flows through the stack.  Propagation is ambient: the serving
layer installs the active span in a thread-local via :func:`trace_scope`
(the exact shape of :func:`repro.resilience.deadline.deadline_scope`), and
deeper layers attach children with :func:`begin` / :func:`finish` without
any plumbing through their signatures.  When no span is ambient —
the default — :func:`begin` returns ``None`` after a single thread-local
read, so untraced requests pay essentially nothing.

Sampling is deterministic: :class:`TraceSampler` draws from one seeded
``random.Random`` stream under a lock, so a given (rate, seed) pair samples
the same request ordinals in every run — traces are reproducible evidence,
not heisen-output.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Any, Dict, Iterator, List, Optional

#: Children beyond this cap are counted, not stored — a runaway loop can
#: inflate ``dropped_children`` but never a span tree's memory footprint.
MAX_CHILDREN = 64

_AMBIENT = threading.local()


class Span:
    """One timed operation: a name, a duration, attributes and children."""

    __slots__ = ("name", "start_s", "end_s", "attributes", "children", "parent", "dropped_children")

    def __init__(self, name: str, parent: Optional["Span"] = None, **attributes: Any) -> None:
        self.name = name
        self.parent = parent
        self.start_s = perf_counter()
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes)
        self.children: List["Span"] = []
        self.dropped_children = 0
        if parent is not None:
            if len(parent.children) < MAX_CHILDREN:
                parent.children.append(self)
            else:
                parent.dropped_children += 1

    def finish(self) -> "Span":
        """Stamp the end time (idempotent) and return the span."""
        if self.end_s is None:
            self.end_s = perf_counter()
        return self

    @property
    def duration_s(self) -> float:
        """Elapsed seconds; measured up to *now* while the span is open."""
        end = self.end_s if self.end_s is not None else perf_counter()
        return end - self.start_s

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-friendly rendering of the subtree rooted here."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_s": self.duration_s,
        }
        if self.attributes:
            payload["attributes"] = dict(self.attributes)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        if self.dropped_children:
            payload["dropped_children"] = self.dropped_children
        return payload

    def describe(self, indent: int = 0) -> str:
        """An indented, human-oriented rendering of the subtree."""
        pad = "  " * indent
        attrs = "".join(f" {key}={value!r}" for key, value in sorted(self.attributes.items()))
        lines = [f"{pad}{self.name}: {self.duration_s * 1000.0:.3f} ms{attrs}"]
        for child in self.children:
            lines.append(child.describe(indent + 1))
        if self.dropped_children:
            lines.append(f"{pad}  … {self.dropped_children} children dropped")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, children={len(self.children)})"


def current_span() -> Optional[Span]:
    """The span installed by the innermost :func:`trace_scope`, if any."""
    return getattr(_AMBIENT, "span", None)


@contextmanager
def trace_scope(span: Optional[Span]) -> Iterator[Optional[Span]]:
    """Install ``span`` as this thread's ambient span for the block.

    Nestable and exception-safe, exactly like ``deadline_scope``: the
    previous ambient span (if any) is restored on exit.  Passing ``None``
    masks any outer scope, which lets a caller explicitly opt a block out of
    an enclosing trace.
    """
    previous = getattr(_AMBIENT, "span", None)
    _AMBIENT.span = span
    try:
        yield span
    finally:
        _AMBIENT.span = previous


def begin(name: str, **attributes: Any) -> Optional[Span]:
    """Open a child of the ambient span and make it ambient; ``None`` if untraced.

    The fast path — no ambient span — is one thread-local read and a
    ``None`` return.  Pair with :func:`finish` in a ``try/finally``.
    """
    parent = getattr(_AMBIENT, "span", None)
    if parent is None:
        return None
    if len(parent.children) >= MAX_CHILDREN:
        # The cap short-circuits construction too: once a parent saturates,
        # a hot loop's begin/finish pair degrades to a length check and a
        # drop count instead of allocating spans that would be discarded.
        parent.dropped_children += 1
        return None
    span = Span(name, parent, **attributes)
    _AMBIENT.span = span
    return span


def finish(span: Optional[Span]) -> None:
    """Close a span opened by :func:`begin`; a no-op on ``None``."""
    if span is None:
        return
    span.finish()
    _AMBIENT.span = span.parent


def child_span(parent: Optional[Span], name: str, **attributes: Any) -> Optional[Span]:
    """Open a child of an *explicit* parent (no ambient install); ``None``-safe."""
    if parent is None:
        return None
    return Span(name, parent, **attributes)


def end_span(span: Optional[Span]) -> None:
    """Close a span opened by :func:`child_span`; a no-op on ``None``."""
    if span is not None:
        span.finish()


class TraceSampler:
    """Deterministic head sampling: the same seed samples the same requests.

    Each :meth:`sample` call consumes one draw from a seeded stream under a
    lock, so the decision sequence is a pure function of ``(rate, seed)`` —
    independent of timing, thread interleaving only permutes *which* request
    gets which ordinal, and ``rate`` 0.0 / 1.0 short-circuit to constants.
    """

    def __init__(self, rate: float = 1.0, seed: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be within [0, 1], got {rate!r}")
        self.rate = rate
        self.seed = seed
        self._lock = threading.Lock()
        self._stream = random.Random(f"trace-sampler:{seed}")
        self._decisions = 0

    def sample(self) -> bool:
        """Decide whether the next request is traced."""
        if self.rate >= 1.0:
            return True
        if self.rate <= 0.0:
            return False
        with self._lock:
            self._decisions += 1
            return self._stream.random() < self.rate

    @property
    def decisions(self) -> int:
        """Draws consumed so far (rate-0/1 short-circuits consume none)."""
        return self._decisions
