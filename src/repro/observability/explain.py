"""EXPLAIN ANALYZE: execute a plan and annotate each step with actuals.

:func:`explain_analyze` compiles a conjunction exactly the way
:func:`repro.queries.bindings.enumerate_bindings` would, executes it with a
:class:`StepProfile` attached, and renders each
:class:`~repro.queries.plan.PlannedAtom` (or the
:class:`~repro.queries.plan.PlannedMultiway` levels) with the rows the step
*actually* surfaced and the time it consumed next to the planner's estimate
— the first direct view of cost-model error.

This module imports the query layer, so it is deliberately **not** imported
by ``repro.observability.__init__`` — the metrics/tracing modules must stay
importable from the bottom of the stack without a cycle.  Import it as
``from repro.observability.explain import explain_analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from repro.queries.ast import Comparison, RelationAtom
from repro.queries.bindings import enumerate_bindings
from repro.queries.plan import JoinPlan, cached_plan


class StepProfile:
    """Per-step actuals collected by the executor during one evaluation.

    The executor calls the hooks below from its hot loop; they are plain
    attribute mutations, cheap enough that the measured evaluation remains
    representative.  Binary steps are profiled by plan depth, the multiway
    leapfrog branch by variable level; ``mode`` records which branch ran.

    Timing attribution: :meth:`candidate` charges the wall-clock elapsed
    since the *previous* recorded event to the step that surfaced the
    current row, so the per-step seconds sum to the total enumeration time
    (including time spent inside downstream steps' generators is charged to
    the step that resumed them — the conventional EXPLAIN ANALYZE
    inclusive/exclusive compromise for pipelined executors).
    """

    def __init__(self, size: int) -> None:
        self.candidates = [0] * size
        self.matches = [0] * size
        self.seconds = [0.0] * size
        self.access_kinds: Dict[int, str] = {}
        self.multiway_mode = False
        self.level_candidates: List[int] = []
        self.level_matches: List[int] = []
        self.level_names: Tuple[str, ...] = ()
        self._last = perf_counter()

    # -- binary-branch hooks ------------------------------------------------
    def access(self, depth: int, kind: str) -> None:
        """Record the access path a step actually took (scan/probe/range/…)."""
        self.access_kinds[depth] = kind

    def candidate(self, depth: int) -> None:
        """A row surfaced at ``depth``; charge elapsed time to that step."""
        now = perf_counter()
        self.seconds[depth] += now - self._last
        self._last = now
        self.candidates[depth] += 1

    def match(self, depth: int) -> None:
        """The last candidate at ``depth`` matched the atom."""
        self.matches[depth] += 1

    # -- multiway-branch hooks ----------------------------------------------
    def mode(self, var_order: Tuple[str, ...]) -> None:
        """The leapfrog branch ran; profile per variable level instead."""
        self.multiway_mode = True
        self.level_names = var_order
        self.level_candidates = [0] * len(var_order)
        self.level_matches = [0] * len(var_order)

    def level_candidate(self, level: int) -> None:
        self.level_candidates[level] += 1

    def level_match(self, level: int) -> None:
        self.level_matches[level] += 1


@dataclass(frozen=True)
class ExplainResult:
    """The outcome of one EXPLAIN ANALYZE run."""

    plan: JoinPlan
    profile: StepProfile
    answer_count: int
    elapsed_s: float

    def render(self) -> str:
        """Actual-vs-estimated, one line per executed plan step."""
        lines: List[str] = []
        profile = self.profile
        if profile.multiway_mode and self.plan.multiway is not None:
            multiway = self.plan.multiway
            lines.append(
                f"multiway leapfrog (est ≈ {multiway.estimated_answers:.0f} answers, "
                f"actual {self.answer_count} answers)"
            )
            for level, name in enumerate(profile.level_names):
                lines.append(
                    f"  level {name}: {profile.level_candidates[level]} candidates "
                    f"→ {profile.level_matches[level]} advanced"
                )
        else:
            for depth, step in enumerate(self.plan.steps):
                estimate = (
                    f"est ≈ {step.estimated_rows:.1f} rows"
                    if step.estimated_rows is not None
                    else "est n/a"
                )
                kind = profile.access_kinds.get(depth, "not reached")
                lines.append(
                    f"{step.describe()}  [{kind}]  ({estimate}, "
                    f"actual {profile.candidates[depth]} candidates "
                    f"→ {profile.matches[depth]} matches, "
                    f"{profile.seconds[depth] * 1000.0:.3f} ms)"
                )
        lines.append(
            f"answers: {self.answer_count}  total: {self.elapsed_s * 1000.0:.3f} ms"
        )
        return "\n".join(lines)


def explain_analyze(
    database,
    relation_atoms: Sequence[RelationAtom],
    comparisons: Sequence[Comparison] = (),
    *,
    use_statistics: Optional[bool] = None,
    plan: Optional[JoinPlan] = None,
) -> ExplainResult:
    """Execute a conjunction with per-step profiling and return the actuals.

    The plan is compiled exactly as :func:`enumerate_bindings` would compile
    it (statistics gathered when every relation provides them, served from
    the plan cache), so the profiled execution is the production execution —
    not a parallel code path that could drift.
    """
    if plan is None:
        statistics = None
        if use_statistics is not False:
            statistics = {}
            for atom in relation_atoms:
                getter = getattr(database.relation(atom.relation), "statistics", None)
                if getter is None:
                    statistics = None
                    break
                statistics[atom.relation] = getter()
        plan = cached_plan(
            tuple(relation_atoms),
            tuple(comparisons),
            frozenset(),
            statistics=statistics,
            epoch=getattr(database, "plan_epoch", None),
        )
    profile = StepProfile(len(plan.steps))
    started = perf_counter()
    answers = list(
        enumerate_bindings(
            database,
            relation_atoms,
            comparisons,
            plan=plan,
            use_statistics=use_statistics,
            step_profile=profile,
        )
    )
    elapsed = perf_counter() - started
    return ExplainResult(plan, profile, len(answers), elapsed)
