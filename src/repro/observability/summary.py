"""Shared percentile summaries for latency-style samples.

Home of the nearest-rank percentile logic that ``serving/server.py``,
``bench_serving.py`` and ``bench_resilience.py`` previously duplicated as
``latency_percentiles``.  The serving module re-exports
:func:`latency_percentiles` from here, so existing imports keep working;
new code should import from :mod:`repro.observability.summary` directly.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Sequence

__all__ = ["percentile_summary", "latency_percentiles"]


def percentile_summary(
    values: Iterable[float], percentiles: Sequence[float] = (50.0, 99.0)
) -> Dict[str, float]:
    """Nearest-rank percentiles over raw samples, keyed ``p50``/``p99``/…

    The nearest-rank definition: the ``p``-th percentile of ``n`` sorted
    samples is the one at 1-based rank ``ceil(n * p / 100)`` — so ``p50`` of
    two samples is the *first*, and ``p100`` is always the maximum.  (The
    historical ``int(n * p / 100)`` truncation indexed one rank high,
    reporting the max for ``p90`` of 10 samples.)  Empty input yields
    all-zero entries, mirroring the historical ``latency_percentiles``
    contract.
    """
    ordered = sorted(values)
    if not ordered:
        return {f"p{percentile:g}": 0.0 for percentile in percentiles}
    summary = {}
    for percentile in percentiles:
        rank = max(0, math.ceil(len(ordered) * percentile / 100.0) - 1)
        summary[f"p{percentile:g}"] = ordered[min(len(ordered) - 1, rank)]
    return summary


def latency_percentiles(results, percentiles: Sequence[float] = (50.0, 99.0)) -> Dict[str, float]:
    """Percentiles over the ``latency_s`` of serving results.

    Accepts anything with a ``latency_s`` attribute (``ServeResult`` in
    practice); behaviour is bit-identical to the function this replaces in
    ``repro.serving.server``.
    """
    return percentile_summary((result.latency_s for result in results), percentiles)
