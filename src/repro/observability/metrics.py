"""The thread-safe metrics registry: named counters, gauges and histograms.

The runtime makes decisions the operator cannot see — the planner picks
access paths, the plan cache and the compatibility oracle hit or miss, the
resilience layer sheds and retries.  This module gives every such decision a
*named instrument*: the layers increment counters, set gauges and observe
histogram samples against one :class:`MetricsRegistry`, and the registry
renders the totals as a frozen snapshot, a JSON document or a
Prometheus-style text exposition.

Per the knob contract, metrics off is bit-identical and near-free: the
active registry is one module global (:data:`_ACTIVE`), installed by
:func:`use_metrics` for a ``with`` block, and every instrumented code path
guards itself with the same ``_ACTIVE is None`` inline test
:mod:`repro.resilience.faults` pioneered — off, an instrumented path costs
one module-attribute load.  Hot loops additionally batch their increments
into local integers and flush once through :meth:`MetricsRegistry.inc_many`,
so even the *enabled* path takes the registry lock a constant number of
times per evaluation, not per row.

**Naming scheme** (enforced at registration, checked again by
``benchmarks/conftest.py``): instrument names are dotted paths of
lower-snake segments — ``layer.noun.verb`` or ``layer.noun_unit`` —
matching :data:`INSTRUMENT_NAME_PATTERN`, e.g. ``plan.cache.hits`` or
``serving.queue_wait_s``.  Histograms carry a unit suffix (``_s`` for
seconds).  Counters may split one total across *labels* (``serving.errors``
by error code); the snapshot renders a labelled count as
``name{label="value"}`` next to the family total.

Every instrument ships registered at import time via the ``register_*``
helpers below (idempotent for an identical spec, loud on a conflicting
redefinition), so a typo'd name fails at the instrumentation site instead of
silently accumulating into a parallel universe.
"""

from __future__ import annotations

import json
import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

#: The documented naming scheme: dotted lower-snake segments, two or more.
INSTRUMENT_NAME_PATTERN = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Default histogram bucket upper bounds (seconds): roughly powers of four
#: from 100µs to ~1.6s, bounded — the registry never grows a bucket list.
DEFAULT_TIME_BUCKETS = (0.0001, 0.0004, 0.0016, 0.0064, 0.0256, 0.1024, 0.4096, 1.6384)

_COUNTER = "counter"
_GAUGE = "gauge"
_HISTOGRAM = "histogram"


@dataclass(frozen=True)
class Instrument:
    """One registered instrument: its kind, help text and (histogram) buckets.

    ``label_key`` names the dimension a labelled counter splits its total
    across (``code`` for typed errors, ``point`` for fault points).
    """

    name: str
    kind: str
    help: str
    buckets: Tuple[float, ...] = ()
    label_key: str = "code"


#: The process-wide instrument registry, populated at import time by the
#: instrumented modules.  ``benchmarks/conftest.py`` validates every name
#: against :data:`INSTRUMENT_NAME_PATTERN` and checks uniqueness.
INSTRUMENTS: Dict[str, Instrument] = {}


def _register(
    name: str,
    kind: str,
    help: str,
    buckets: Tuple[float, ...] = (),
    label_key: str = "code",
) -> str:
    if not INSTRUMENT_NAME_PATTERN.match(name):
        raise ValueError(
            f"instrument name {name!r} violates the naming scheme "
            f"{INSTRUMENT_NAME_PATTERN.pattern!r}"
        )
    spec = Instrument(name, kind, help, buckets, label_key)
    existing = INSTRUMENTS.get(name)
    if existing is not None and existing != spec:
        raise ValueError(f"instrument {name!r} already registered as {existing}")
    INSTRUMENTS[name] = spec
    return name


def register_counter(name: str, help: str, label_key: str = "code") -> str:
    """Register a monotonically increasing counter; returns the name."""
    return _register(name, _COUNTER, help, label_key=label_key)


def register_gauge(name: str, help: str) -> str:
    """Register a point-in-time gauge; returns the name."""
    return _register(name, _GAUGE, help)


def register_histogram(
    name: str, help: str, buckets: Sequence[float] = DEFAULT_TIME_BUCKETS
) -> str:
    """Register a bounded-bucket histogram; returns the name.

    ``buckets`` are the ascending upper bounds; an implicit +inf bucket
    catches the overflow, so the per-registry state is a fixed-size array —
    observing can never allocate proportionally to the data.
    """
    bounds = tuple(sorted(float(b) for b in buckets))
    if not bounds:
        raise ValueError("a histogram needs at least one bucket bound")
    return _register(name, _HISTOGRAM, help, bounds)


@dataclass(frozen=True)
class HistogramSnapshot:
    """A frozen view of one histogram: per-bucket counts plus summary stats.

    ``buckets`` pairs each registered upper bound (the final entry is
    ``inf``) with the count of samples ≤ that bound (non-cumulative).
    """

    buckets: Tuple[Tuple[float, int], ...]
    count: int
    sum: float
    min: Optional[float]
    max: Optional[float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "buckets": [[bound, count] for bound, count in self.buckets],
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class _Histogram:
    __slots__ = ("bounds", "counts", "count", "total", "low", "high")

    def __init__(self, bounds: Tuple[float, ...]) -> None:
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # + the implicit +inf bucket
        self.count = 0
        self.total = 0.0
        self.low: Optional[float] = None
        self.high: Optional[float] = None

    def observe(self, value: float) -> None:
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)
        self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.low is None or value < self.low:
            self.low = value
        if self.high is None or value > self.high:
            self.high = value

    def snapshot(self) -> HistogramSnapshot:
        bounds = self.bounds + (float("inf"),)
        return HistogramSnapshot(
            tuple(zip(bounds, tuple(self.counts))),
            self.count,
            self.total,
            self.low,
            self.high,
        )


class MetricsRegistry:
    """Thread-safe totals for every registered instrument.

    Counter writes are **lock-free**: each writer thread accumulates into its
    own private cell (a per-thread dict registered with the registry on first
    touch), so the hot instrumented paths never contend — under CPython's
    GIL a read-modify-write on a dict only *this* thread writes can never
    lose an update.  Readers aggregate across the cells, so totals are exact
    whenever the writers are quiescent (joined, or between requests).
    Gauges and histograms are written under the registry lock — they are
    per-request, not per-row, so the lock is off the hot path.  Instruments
    are validated against :data:`INSTRUMENTS` on first touch, so a typo'd
    name raises at the instrumentation site rather than minting a shadow
    series.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Every thread's counter cell.  Keys are ``str`` names for family
        #: totals and ``(name, label)`` pairs for labelled children.
        self._cells: List[Dict[object, int]] = []
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}

    # -- write side ---------------------------------------------------------
    @staticmethod
    def _spec(name: str, kind: str) -> Instrument:
        spec = INSTRUMENTS.get(name)
        if spec is None:
            raise KeyError(f"unregistered instrument: {name!r}")
        if spec.kind != kind:
            raise TypeError(f"instrument {name!r} is a {spec.kind}, not a {kind}")
        return spec

    def _cell(self) -> Dict[object, int]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = self._local.cell = {}
            with self._lock:
                self._cells.append(cell)
        return cell

    def inc(self, name: str, amount: int = 1, label: Optional[str] = None) -> None:
        """Add ``amount`` to a counter (optionally to one labelled child)."""
        self._spec(name, _COUNTER)
        cell = self._cell()
        cell[name] = cell.get(name, 0) + amount
        if label is not None:
            key = (name, label)
            cell[key] = cell.get(key, 0) + amount

    def inc_many(self, increments: Iterable[Tuple[str, int]]) -> None:
        """Batched :meth:`inc`; zero amounts are skipped (never touched)."""
        pairs = [(name, amount) for name, amount in increments if amount]
        for name, _ in pairs:
            self._spec(name, _COUNTER)
        if not pairs:
            return
        cell = self._cell()
        for name, amount in pairs:
            cell[name] = cell.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set a gauge to its current value."""
        self._spec(name, _GAUGE)
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one histogram sample."""
        spec = self._spec(name, _HISTOGRAM)
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = _Histogram(spec.buckets)
            histogram.observe(value)

    # -- read side ----------------------------------------------------------
    def _aggregate(self) -> Tuple[Dict[str, int], Dict[str, Dict[str, int]]]:
        """Sum every thread's cell into (family totals, labelled children).

        Called under :attr:`_lock` (which guards the cell list).  Each cell is
        copied before iteration — a C-level dict copy is atomic under the GIL,
        so a still-running writer can make the copy *stale*, never torn.
        """
        totals: Dict[str, int] = {}
        labelled: Dict[str, Dict[str, int]] = {}
        for cell in self._cells:
            for key, amount in dict(cell).items():
                if isinstance(key, str):
                    totals[key] = totals.get(key, 0) + amount
                else:
                    name, label = key
                    children = labelled.setdefault(name, {})
                    children[label] = children.get(label, 0) + amount
        return totals, labelled

    def counter(self, name: str, label: Optional[str] = None) -> int:
        """The current value of a counter (or of one labelled child)."""
        self._spec(name, _COUNTER)
        with self._lock:
            totals, labelled = self._aggregate()
        if label is None:
            return totals.get(name, 0)
        return labelled.get(name, {}).get(label, 0)

    def labelled_counts(self, name: str) -> Dict[str, int]:
        """The per-label breakdown of a labelled counter (may be empty)."""
        self._spec(name, _COUNTER)
        with self._lock:
            _, labelled = self._aggregate()
        return dict(labelled.get(name, {}))

    def snapshot(self) -> Mapping[str, object]:
        """A frozen, point-in-time view of every touched instrument.

        Returns an immutable mapping (a :class:`~types.MappingProxyType`)
        from instrument name to value: ``int`` for counters (labelled
        children appear as ``name{label="value"}`` entries next to the
        family total), ``float`` for gauges, :class:`HistogramSnapshot` for
        histograms.  Keys are sorted, so renderings are deterministic.
        """
        with self._lock:
            totals, labelled = self._aggregate()
            entries: Dict[str, object] = {}
            for name, value in totals.items():
                entries[name] = value
                label_key = INSTRUMENTS[name].label_key
                for label, count in labelled.get(name, {}).items():
                    entries[f'{name}{{{label_key}="{label}"}}'] = count
            entries.update(self._gauges)
            for name, histogram in self._histograms.items():
                entries[name] = histogram.snapshot()
            return MappingProxyType(dict(sorted(entries.items())))

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot as a JSON document (histograms expand to objects)."""
        payload = {
            name: value.to_dict() if isinstance(value, HistogramSnapshot) else value
            for name, value in self.snapshot().items()
        }
        return json.dumps(payload, indent=indent, sort_keys=True)

    def render_prometheus(self) -> str:
        """A Prometheus-style text exposition of every touched instrument.

        One ``# HELP`` / ``# TYPE`` header per family; counters render their
        labelled children, histograms render cumulative ``_bucket`` series
        plus ``_sum`` and ``_count``.  Dots in instrument names become
        underscores, per the Prometheus character set.
        """
        lines: List[str] = []
        with self._lock:
            counters, labelled = self._aggregate()
            gauges = dict(self._gauges)
            histograms = {name: h.snapshot() for name, h in self._histograms.items()}
        for name in sorted(counters):
            flat = name.replace(".", "_")
            spec = INSTRUMENTS[name]
            lines.append(f"# HELP {flat} {spec.help}")
            lines.append(f"# TYPE {flat} counter")
            lines.append(f"{flat} {counters[name]}")
            label_key = spec.label_key
            for label in sorted(labelled.get(name, {})):
                lines.append(f'{flat}{{{label_key}="{label}"}} {labelled[name][label]}')
        for name in sorted(gauges):
            flat = name.replace(".", "_")
            spec = INSTRUMENTS[name]
            lines.append(f"# HELP {flat} {spec.help}")
            lines.append(f"# TYPE {flat} gauge")
            lines.append(f"{flat} {gauges[name]}")
        for name in sorted(histograms):
            flat = name.replace(".", "_")
            spec = INSTRUMENTS[name]
            snap = histograms[name]
            lines.append(f"# HELP {flat} {spec.help}")
            lines.append(f"# TYPE {flat} histogram")
            cumulative = 0
            for bound, count in snap.buckets:
                cumulative += count
                le = "+Inf" if bound == float("inf") else f"{bound:g}"
                lines.append(f'{flat}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{flat}_sum {snap.sum:g}")
            lines.append(f"{flat}_count {snap.count}")
        return "\n".join(lines) + ("\n" if lines else "")

    def render_table(self) -> str:
        """A human-oriented summary table (the ``repro serve --metrics`` view)."""
        rows: List[Tuple[str, str]] = []
        for name, value in self.snapshot().items():
            if isinstance(value, HistogramSnapshot):
                mean = value.sum / value.count if value.count else 0.0
                rows.append(
                    (
                        name,
                        f"count={value.count} mean={mean:.6f} "
                        f"min={value.min if value.min is not None else 0:.6f} "
                        f"max={value.max if value.max is not None else 0:.6f}",
                    )
                )
            elif isinstance(value, float):
                rows.append((name, f"{value:g}"))
            else:
                rows.append((name, str(value)))
        if not rows:
            return "(no samples)"
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


#: The currently active registry, or ``None``.  Instrumented hot paths test
#: this directly (``if metrics._ACTIVE is not None: ...``) so that metrics
#: off costs a single module-attribute load — the exact idiom
#: :data:`repro.resilience.faults._ACTIVE` uses.
_ACTIVE: Optional[MetricsRegistry] = None


def active_registry() -> Optional[MetricsRegistry]:
    """The registry installed by the innermost :func:`use_metrics`, if any."""
    return _ACTIVE


@contextmanager
def use_metrics(registry: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Install ``registry`` as the process-wide active registry for the block.

    Like :func:`repro.resilience.faults.chaos`, the scope is global — the
    instrumented points are reached from arbitrary worker threads — and does
    not nest: two overlapping registries would silently split one workload's
    totals.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("use_metrics() scopes do not nest")
    _ACTIVE = registry
    try:
        yield registry
    finally:
        _ACTIVE = None


# ---------------------------------------------------------------------------
# The instrument roster.  Registered here, in one place, so the naming-scheme
# check in benchmarks/conftest.py sees the complete set after one import and
# the instrumented modules refer to names that provably exist.
# ---------------------------------------------------------------------------
PLAN_CACHE_HITS = register_counter("plan.cache.hits", "join-plan cache hits")
PLAN_CACHE_MISSES = register_counter("plan.cache.misses", "join-plan cache misses (compilations)")

ORACLE_HITS = register_counter("oracle.verdict.hits", "compatibility verdicts served from cache")
ORACLE_MISSES = register_counter("oracle.verdict.misses", "compatibility verdicts evaluated")
ORACLE_RETENTIONS = register_counter(
    "oracle.verdict.retentions", "verdict caches retained across a non-footprint delta"
)
ORACLE_INVALIDATIONS = register_counter(
    "oracle.verdict.invalidations", "verdict caches cleared by a footprint delta"
)

EXECUTOR_ROWS_SCANNED = register_counter(
    "executor.rows.scanned", "candidate rows surfaced by scan/range/reduced steps"
)
EXECUTOR_ROWS_PROBED = register_counter(
    "executor.rows.probed", "candidate rows surfaced by hash-probe and trie steps"
)
EXECUTOR_STEPS = register_counter("executor.steps", "evaluator search nodes entered")

ENGINE_NODES_EXAMINED = register_counter(
    "engine.nodes.examined", "package-lattice nodes examined by the search engine"
)
ENGINE_NODES_PRUNED = register_counter(
    "engine.nodes.pruned", "package-lattice subtree prunes (cost, compatibility, bound)"
)

DATABASE_COMMITS = register_counter(
    "database.commits", "effective delta commits (epoch advances)"
)
DATABASE_COW_CLONES = register_counter(
    "database.cow_clones", "relations cloned copy-on-write for a live snapshot"
)
DATABASE_SNAPSHOTS_PINNED = register_counter(
    "database.snapshots_pinned", "database snapshots pinned"
)

SERVING_REQUESTS = register_counter("serving.requests", "requests served (all outcomes)")
SERVING_RETRIES = register_counter("serving.retries", "request re-executions after retryable errors")
SERVING_SHEDS = register_counter("serving.sheds", "requests shed by bounded admission")
SERVING_ERRORS = register_counter(
    "serving.errors", "error results by typed code (labelled per code)"
)
SERVING_INFLIGHT = register_gauge(
    "serving.inflight", "concurrently admitted requests (last observed)"
)
SERVING_QUEUE_WAIT_S = register_histogram(
    "serving.queue_wait_s", "seconds between batch submission and worker pickup"
)
SERVING_LATENCY_S = register_histogram(
    "serving.latency_s", "end-to-end request latency in seconds"
)

RESILIENCE_FAULTS_INJECTED = register_counter(
    "resilience.faults.injected",
    "faults fired by the active chaos plan",
    label_key="point",
)
RESILIENCE_DEADLINE_TIMEOUTS = register_counter(
    "resilience.deadline.timeouts", "deadline checks that raised a request timeout"
)

WAL_RECORDS_APPENDED = register_counter(
    "wal.records.appended", "delta records appended to the write-ahead log"
)
WAL_BYTES_APPENDED = register_counter(
    "wal.bytes.appended", "framed bytes appended to the write-ahead log"
)
WAL_FSYNCS = register_counter("wal.fsyncs", "fsync calls issued by the write-ahead log")
WAL_GROUP_COMMIT_BATCH_SIZE = register_histogram(
    "wal.group_commit.batch_size",
    "records made durable per fsync (group-commit batching factor)",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)
CHECKPOINT_WRITTEN = register_counter(
    "checkpoint.written", "durable database images written"
)
RECOVERY_RECORDS_REPLAYED = register_counter(
    "recovery.records.replayed", "WAL tail records replayed by crash recovery"
)

COLUMNAR_BUILDS = register_counter(
    "columnar.builds", "columnar encodings built from the tuple set"
)
COLUMNAR_DECLINES = register_counter(
    "columnar.declines", "columnar builds that declined on unencodable values"
)
COLUMNAR_KERNEL_SELECTS = register_counter(
    "columnar.kernel.selects", "vectorized selection kernels executed"
)
COLUMNAR_ROWS_SELECTED = register_counter(
    "columnar.rows.selected", "rows surfaced by vectorized selection kernels"
)
