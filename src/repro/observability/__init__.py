"""Full-stack observability: metrics, request tracing and EXPLAIN ANALYZE.

Three pillars, all off by default under the knob contract (all-off is
bit-identical to the uninstrumented behaviour; see the differential suite in
``tests/test_observability.py``):

* :mod:`repro.observability.metrics` — a thread-safe registry of named
  counters, gauges and bounded-bucket histograms.  Instrumented code paths
  guard on the ``metrics._ACTIVE is None`` module global (the
  :mod:`repro.resilience.faults` idiom), so with no registry installed an
  instrument costs one attribute load.
* :mod:`repro.observability.tracing` — per-request span trees propagated
  ambiently through a thread-local scope (the ``deadline_scope`` idiom),
  with seeded deterministic sampling.
* :mod:`repro.observability.explain` — EXPLAIN ANALYZE: execute a plan and
  annotate each step with actual rows and time next to the planner's
  estimate.  **Imported lazily** (``from repro.observability.explain import
  explain_analyze``) because it depends on the query layer; this package's
  eager surface is stdlib-only so the bottom layers of the stack can import
  it without cycles.

See the ROADMAP's "Adding an instrumented code path" recipe before adding
instruments.
"""

from repro.observability.metrics import (
    INSTRUMENT_NAME_PATTERN,
    INSTRUMENTS,
    HistogramSnapshot,
    Instrument,
    MetricsRegistry,
    active_registry,
    register_counter,
    register_gauge,
    register_histogram,
    use_metrics,
)
from repro.observability.summary import latency_percentiles, percentile_summary
from repro.observability.tracing import (
    Span,
    TraceSampler,
    begin,
    child_span,
    current_span,
    end_span,
    finish,
    trace_scope,
)

__all__ = [
    "INSTRUMENT_NAME_PATTERN",
    "INSTRUMENTS",
    "HistogramSnapshot",
    "Instrument",
    "MetricsRegistry",
    "active_registry",
    "register_counter",
    "register_gauge",
    "register_histogram",
    "use_metrics",
    "latency_percentiles",
    "percentile_summary",
    "Span",
    "TraceSampler",
    "begin",
    "child_span",
    "current_span",
    "end_span",
    "finish",
    "trace_scope",
]
