"""FRP — the function problem: compute a top-k package selection.

Two solvers are provided.

* :func:`compute_top_k` — the reference solver: enumerate every valid package,
  sort by rating and return the k best.  Its cost is dominated by the number
  of candidate subsets of ``Q(D)``, i.e. it is the deterministic simulation of
  the paper's nondeterministic upper bound.

* :func:`compute_top_k_with_oracle` — the structure of the Theorem 5.1
  algorithm: for each of the k slots, binary-search the largest achievable
  rating using the EXISTPACK≥ oracle, then materialise a package achieving it.
  With integer-valued ratings the binary search uses O(p(n)) oracle calls per
  package, exactly as in the paper; because our oracle is a deterministic
  search that returns a witness, the paper's attribute-by-attribute package
  reconstruction collapses into reading off that witness.

Both return a :class:`FRPResult` carrying the selection (or ``None`` when no
top-k selection exists) plus counters the benchmarks report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.enumeration import PackageSearchEngine, best_valid_packages
from repro.core.model import RecommendationProblem
from repro.core.oracle import ExistPackOracle
from repro.core.packages import Package, Selection
from repro.relational.errors import ModelError


@dataclass(frozen=True)
class FRPResult:
    """Outcome of an FRP computation."""

    selection: Optional[Selection]
    ratings: Tuple[float, ...] = ()
    oracle_calls: int = 0
    packages_examined: int = 0

    @property
    def found(self) -> bool:
        """Whether a top-k selection exists."""
        return self.selection is not None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.found


def compute_top_k(problem: RecommendationProblem) -> FRPResult:
    """Exact solver: top-k search over the shared package-lattice engine.

    Returns ``selection=None`` when fewer than k distinct valid packages exist
    (the paper's convention: a top-k selection then does not exist).  When the
    problem declares ``monotone_val`` the engine branch-and-bounds the search;
    pruning engages only once k candidates are in hand, so the existence
    verdict — and, by the strict-bound argument in
    :meth:`~repro.core.enumeration.PackageSearchEngine.best_valid`, the
    selection itself — is identical to the exhaustive sort.
    ``packages_examined`` counts lattice nodes the search touched (pruned
    subtrees are genuinely not examined).
    """
    engine = PackageSearchEngine(problem)
    scored, examined, total_seen = engine.best_valid(problem.k)
    if total_seen < problem.k:
        return FRPResult(None, packages_examined=examined)
    return FRPResult(
        Selection(package for _, package in scored),
        ratings=tuple(rating for rating, _ in scored),
        packages_examined=examined,
    )


def _rating_bounds(problem: RecommendationProblem, oracle: ExistPackOracle) -> Tuple[int, int]:
    """An integer interval guaranteed to contain every achievable rating.

    The paper takes ``[0, 2^{p(n)}]``; we instead probe the achievable ratings
    of singleton packages (and the empty package) to seed the interval, then
    widen it. This keeps the binary search short without changing its logic.
    """
    ratings = [0.0]
    answers = oracle.candidate_items
    engine = oracle.engine
    for item in answers.rows():
        ratings.append(problem.val(engine.singleton(item)))
    finite = [r for r in ratings if math.isfinite(r)]
    low = math.floor(min(finite)) - 1
    high = math.ceil(max(finite)) + max(1, len(answers)) * (math.ceil(max(finite)) - math.floor(min(finite)) + 1)
    return int(low), int(high)


def compute_top_k_with_oracle(
    problem: RecommendationProblem,
    rating_interval: Optional[Tuple[int, int]] = None,
) -> FRPResult:
    """The Theorem 5.1 algorithm: binary search on rating bounds per package.

    Requires the rating function to be integer-valued on valid packages (the
    reductions and the example workloads satisfy this); a ``ModelError`` is
    raised when a non-integral rating is encountered because the binary search
    over an integer interval would then be unsound.
    """
    oracle = ExistPackOracle(problem)
    if rating_interval is None:
        rating_interval = _rating_bounds(problem, oracle)
    low_limit, high_limit = rating_interval

    selection: List[Package] = []
    ratings: List[float] = []
    for _ in range(problem.k):
        # Binary search for the maximal B with a valid, not-yet-chosen package
        # rated ≥ B (step 3(a) of the paper's algorithm).
        low, high = low_limit, high_limit
        best: Optional[Package] = None
        best_rating: Optional[int] = None
        while low <= high:
            middle = (low + high) // 2
            witness = oracle(middle, exclude=selection)
            if witness is not None:
                rating = problem.val(witness)
                if not float(rating).is_integer():
                    raise ModelError(
                        "compute_top_k_with_oracle requires integer-valued ratings; "
                        f"got {rating!r}"
                    )
                best, best_rating = witness, middle
                low = middle + 1
            else:
                high = middle - 1
        if best is None:
            return FRPResult(None, oracle_calls=oracle.calls)
        # Step 3(b)/(c): materialise a package achieving the maximal bound.  The
        # oracle already returned a witness with val ≥ best_rating; ask once more
        # for a witness at the *exact* maximal bound to mirror the paper's
        # reconstruction target.
        exact = oracle(best_rating, exclude=selection)
        chosen = exact if exact is not None else best
        selection.append(chosen)
        ratings.append(problem.val(chosen))
    return FRPResult(Selection(selection), ratings=tuple(ratings), oracle_calls=oracle.calls)


def top_rated_packages(problem: RecommendationProblem, how_many: Optional[int] = None) -> Tuple[Package, ...]:
    """The ``how_many`` (default ``k``) best valid packages, even if fewer exist.

    Unlike :func:`compute_top_k` this never returns ``None``; it is the
    "give me whatever you have" entry point used by the examples.
    """
    return best_valid_packages(problem, how_many or problem.k)
