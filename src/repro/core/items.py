"""Item recommendations — the degenerate case of package recommendations.

A top-k item selection for ``(Q, D, f)`` is a set of k distinct tuples of
``Q(D)`` whose utilities are the k highest (Section 2).  The functions here
solve the item problems directly (a sort of ``Q(D)`` by utility) and also via
the package embedding, which the tests compare against each other — that
equivalence is exactly the paper's "item selections are a special case of
package selections" claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.frp import compute_top_k
from repro.core.model import RecommendationProblem, item_recommendation_problem
from repro.core.packages import Package, Selection
from repro.queries.base import Query
from repro.relational.database import Database, Row


@dataclass(frozen=True)
class ItemSelectionResult:
    """Outcome of a top-k item computation."""

    items: Optional[Tuple[Row, ...]]
    utilities: Tuple[float, ...] = ()

    @property
    def found(self) -> bool:
        """Whether a top-k item selection exists (|Q(D)| ≥ k)."""
        return self.items is not None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.found


def top_k_items(
    database: Database, query: Query, utility: Callable[[Row], float], k: int
) -> ItemSelectionResult:
    """Compute a top-k item selection directly (sort ``Q(D)`` by utility)."""
    answers = sorted(query.evaluate(database).rows(), key=lambda row: (-utility(row), repr(row)))
    if len(answers) < k:
        return ItemSelectionResult(None)
    chosen = tuple(answers[:k])
    return ItemSelectionResult(chosen, tuple(utility(row) for row in chosen))


def top_k_items_via_packages(
    database: Database, query: Query, utility: Callable[[Row], float], k: int
) -> ItemSelectionResult:
    """Compute a top-k item selection through the package embedding of Section 2."""
    problem = item_recommendation_problem(database, query, utility, k=k)
    result = compute_top_k(problem)
    if result.selection is None:
        return ItemSelectionResult(None)
    items = []
    for package in result.selection:
        (item,) = package.items
        items.append(item)
    return ItemSelectionResult(tuple(items), result.ratings)


def is_top_k_item_selection(
    database: Database,
    query: Query,
    utility: Callable[[Row], float],
    candidate: Sequence[Row],
) -> bool:
    """RPP restricted to items: is ``candidate`` a top-k item selection?"""
    candidate = [tuple(row) for row in candidate]
    if len(set(candidate)) != len(candidate):
        return False
    answers = query.evaluate(database).rows()
    if not all(row in answers for row in candidate):
        return False
    threshold = min(utility(row) for row in candidate)
    return all(utility(row) <= threshold for row in answers if row not in set(candidate))


def maximum_item_bound(
    database: Database, query: Query, utility: Callable[[Row], float], k: int
) -> Optional[float]:
    """MBP restricted to items: the k-th highest utility of ``Q(D)``, if defined."""
    utilities = sorted((utility(row) for row in query.evaluate(database).rows()), reverse=True)
    if len(utilities) < k:
        return None
    return utilities[k - 1]


def count_items_above(
    database: Database, query: Query, utility: Callable[[Row], float], bound: float
) -> int:
    """CPP restricted to items: how many tuples of ``Q(D)`` have utility ≥ bound?"""
    return sum(1 for row in query.evaluate(database).rows() if utility(row) >= bound)
