"""Group recommendations — the Section 9 extension of the paper's model.

The paper closes by listing *group recommendations* (recommending to a group
of users instead of a single user, citing Amer-Yahia et al.) as an open issue.
This module implements the natural extension within the paper's own model:

* every group member brings their own PTIME rating function ``val_u`` over
  packages (or an item utility ``f_u``, lifted through the Section 2
  embedding);
* an *aggregation strategy* combines the members' ratings into a single PTIME
  package rating, so a group problem reduces to an ordinary
  :class:`~repro.core.model.RecommendationProblem` and every upper bound of
  the paper carries over unchanged (the aggregate is still a PTIME function);
* the lower bounds trivially continue to hold because a single-member group is
  exactly the original model.

The aggregation strategies implemented are the standard ones from the group
recommendation literature:

============================  ==================================================
strategy                      group rating of a package ``N``
============================  ==================================================
:class:`AverageRating`        weighted mean of ``val_u(N)``
:class:`LeastMiseryRating`    ``min_u val_u(N)`` (nobody is left miserable)
:class:`MostPleasureRating`   ``max_u val_u(N)``
:class:`DisagreementPenalisedRating`  mean minus ``λ · (max − min)``
============================  ==================================================

Beyond solving the group problem, :func:`fairness_report` summarises how well
each member is served by a selection, which is what a practical system would
show next to the recommendation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Iterable, Mapping, Optional, Sequence, Tuple

from repro.core.compatibility import CompatibilityConstraint, EmptyConstraint
from repro.core.frp import FRPResult, compute_top_k
from repro.core.functions import PackageCost, PackageRating, UtilityRating
from repro.core.model import RecommendationProblem, SINGLETON_BOUND, SizeBound
from repro.core.packages import Package, Selection
from repro.queries.base import Query
from repro.relational.database import Database, Row
from repro.relational.errors import ModelError


# ---------------------------------------------------------------------------
# Group members
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GroupMember:
    """One member of a group: a name, a package rating and a voting weight."""

    name: str
    rating: PackageRating
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ModelError(f"member {self.name!r} must have a positive weight")

    @classmethod
    def from_utility(
        cls, name: str, utility: Callable[[Row], float], weight: float = 1.0
    ) -> "GroupMember":
        """A member whose preferences are an item utility ``f_u`` (Section 2 lift)."""
        return cls(name, UtilityRating(utility), weight)

    def describe(self) -> str:
        return f"{self.name} (weight {self.weight}, {self.rating.describe()})"


def _require_members(members: Sequence[GroupMember]) -> Tuple[GroupMember, ...]:
    members = tuple(members)
    if not members:
        raise ModelError("a group needs at least one member")
    names = [member.name for member in members]
    if len(set(names)) != len(names):
        raise ModelError(f"duplicate member names: {sorted(names)}")
    return members


# ---------------------------------------------------------------------------
# Aggregation strategies (each is itself a PTIME package rating)
# ---------------------------------------------------------------------------
class GroupRating(PackageRating):
    """Base class of aggregated ratings; keeps the members for reporting."""

    def __init__(self, members: Sequence[GroupMember]) -> None:
        self.members = _require_members(members)

    def member_ratings(self, package: Package) -> Dict[str, float]:
        """``{member name: val_u(N)}`` for one package."""
        return {member.name: member.rating(package) for member in self.members}


class AverageRating(GroupRating):
    """The weighted mean of the members' ratings."""

    def __call__(self, package: Package) -> float:
        total_weight = sum(member.weight for member in self.members)
        weighted = sum(member.weight * member.rating(package) for member in self.members)
        return weighted / total_weight

    def describe(self) -> str:
        return f"average of {len(self.members)} member ratings"


class LeastMiseryRating(GroupRating):
    """The minimum member rating: the group is only as happy as its least happy member."""

    def __call__(self, package: Package) -> float:
        return min(member.rating(package) for member in self.members)

    def describe(self) -> str:
        return f"least misery over {len(self.members)} members"


class MostPleasureRating(GroupRating):
    """The maximum member rating: one delighted member carries the group."""

    def __call__(self, package: Package) -> float:
        return max(member.rating(package) for member in self.members)

    def describe(self) -> str:
        return f"most pleasure over {len(self.members)} members"


class DisagreementPenalisedRating(GroupRating):
    """Weighted mean minus a penalty proportional to the rating spread."""

    def __init__(self, members: Sequence[GroupMember], penalty: float = 0.5) -> None:
        super().__init__(members)
        if penalty < 0:
            raise ModelError("the disagreement penalty must be non-negative")
        self.penalty = penalty

    def __call__(self, package: Package) -> float:
        ratings = [member.rating(package) for member in self.members]
        total_weight = sum(member.weight for member in self.members)
        weighted = sum(member.weight * member.rating(package) for member in self.members)
        spread = max(ratings) - min(ratings)
        return weighted / total_weight - self.penalty * spread

    def describe(self) -> str:
        return (
            f"average of {len(self.members)} member ratings minus "
            f"{self.penalty} × disagreement"
        )


#: Names accepted by :func:`aggregation_strategy`.
STRATEGIES: Mapping[str, Callable[..., GroupRating]] = {
    "average": AverageRating,
    "least_misery": LeastMiseryRating,
    "most_pleasure": MostPleasureRating,
    "disagreement": DisagreementPenalisedRating,
}


def aggregation_strategy(name: str, members: Sequence[GroupMember], **options) -> GroupRating:
    """Construct an aggregation strategy by name.

    ``name`` is one of ``average``, ``least_misery``, ``most_pleasure`` or
    ``disagreement`` (the latter accepts ``penalty=...``).
    """
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise ModelError(
            f"unknown aggregation strategy {name!r}; choose one of {sorted(STRATEGIES)}"
        ) from None
    return factory(members, **options)


# ---------------------------------------------------------------------------
# The group recommendation problem
# ---------------------------------------------------------------------------
@dataclass
class GroupRecommendationProblem:
    """A package recommendation problem shared by a group of users.

    All selection-side inputs (``D``, ``Q``, ``Qc``, ``cost()``, ``C``, ``k``,
    the size bound) are exactly those of the single-user model; only the rating
    side changes: each member has their own ``val_u`` and ``strategy`` decides
    how the group rating is formed.
    """

    database: Database
    query: Query
    cost: PackageCost
    budget: float
    members: Sequence[GroupMember]
    strategy: str = "average"
    strategy_options: Mapping[str, float] = field(default_factory=dict)
    k: int = 1
    compatibility: CompatibilityConstraint = field(default_factory=EmptyConstraint)
    size_bound: SizeBound = SINGLETON_BOUND
    name: str = "group recommendation"
    monotone_cost: bool = False
    antimonotone_compatibility: bool = False
    monotone_val: bool = False

    def __post_init__(self) -> None:
        self.members = _require_members(self.members)

    def group_rating(self) -> GroupRating:
        """The aggregated rating function the group problem optimises."""
        return aggregation_strategy(self.strategy, self.members, **dict(self.strategy_options))

    def to_problem(self) -> RecommendationProblem:
        """The equivalent single-user problem (the paper's model, unchanged)."""
        return RecommendationProblem(
            database=self.database,
            query=self.query,
            cost=self.cost,
            val=self.group_rating(),
            budget=self.budget,
            k=self.k,
            compatibility=self.compatibility,
            size_bound=self.size_bound,
            name=f"{self.name} [{self.strategy}]",
            monotone_cost=self.monotone_cost,
            antimonotone_compatibility=self.antimonotone_compatibility,
            monotone_val=self.monotone_val,
        )

    def with_strategy(self, strategy: str, **options) -> "GroupRecommendationProblem":
        """The same group problem under a different aggregation strategy."""
        return replace(self, strategy=strategy, strategy_options=dict(options))


# ---------------------------------------------------------------------------
# Solving and reporting
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GroupFRPResult:
    """Outcome of a group top-k computation."""

    selection: Optional[Selection]
    group_ratings: Tuple[float, ...] = ()
    member_ratings: Tuple[Mapping[str, float], ...] = ()

    @property
    def found(self) -> bool:
        """Whether a top-k selection exists for the group."""
        return self.selection is not None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.found


def compute_group_top_k(group: GroupRecommendationProblem) -> GroupFRPResult:
    """FRP for a group: solve the aggregated problem and report per-member ratings."""
    rating = group.group_rating()
    result: FRPResult = compute_top_k(group.to_problem())
    if result.selection is None:
        return GroupFRPResult(None)
    per_member = tuple(rating.member_ratings(package) for package in result.selection)
    return GroupFRPResult(result.selection, result.ratings, per_member)


@dataclass(frozen=True)
class FairnessReport:
    """How well a selection serves each member of the group."""

    member_totals: Mapping[str, float]
    least_satisfied: str
    most_satisfied: str
    spread: float

    def describe(self) -> str:
        ordered = ", ".join(f"{name}: {value:.2f}" for name, value in sorted(self.member_totals.items()))
        return (
            f"member totals {{{ordered}}}; least satisfied {self.least_satisfied}, "
            f"most satisfied {self.most_satisfied}, spread {self.spread:.2f}"
        )


def fairness_report(group: GroupRecommendationProblem, selection: Selection) -> FairnessReport:
    """Summarise per-member satisfaction with a selection.

    Each member's total is the sum of their ratings over the selected packages;
    the spread is the gap between the most and the least satisfied member —
    zero means perfectly balanced.
    """
    if not len(selection):
        raise ModelError("cannot report fairness of an empty selection")
    totals: Dict[str, float] = {member.name: 0.0 for member in group.members}
    for package in selection:
        for member in group.members:
            totals[member.name] += member.rating(package)
    least = min(totals, key=lambda name: (totals[name], name))
    most = max(totals, key=lambda name: (totals[name], name))
    return FairnessReport(
        member_totals=totals,
        least_satisfied=least,
        most_satisfied=most,
        spread=totals[most] - totals[least],
    )


def strategy_comparison(
    group: GroupRecommendationProblem, strategies: Iterable[str] = ("average", "least_misery", "most_pleasure")
) -> Dict[str, GroupFRPResult]:
    """Solve the same group problem under several strategies (an ablation helper)."""
    results: Dict[str, GroupFRPResult] = {}
    for strategy in strategies:
        results[strategy] = compute_group_top_k(group.with_strategy(strategy))
    return results
