"""The package recommendation model.

A :class:`RecommendationProblem` bundles the inputs shared by every problem of
the paper: the database ``D``, the selection query ``Q``, the compatibility
constraint ``Qc``, the aggregate functions ``cost()`` and ``val()``, the cost
budget ``C``, the number of packages ``k`` and the bound on package sizes
(a predefined polynomial in ``|D|``, or a constant for the Section 6 special
case).

Validity of a single package and of a whole selection is defined here; the
individual problems (RPP, FRP, MBP, CPP, QRPP, ARPP) live in their own
modules and all defer to these definitions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

from repro.core.compatibility import (
    CompatibilityConstraint,
    CompatibilityOracle,
    EmptyConstraint,
)
from repro.core.functions import (
    CountCost,
    PackageCost,
    PackageRating,
    UtilityRating,
    item_embedding_functions,
)
from repro.core.packages import Package, Selection
from repro.queries.base import Query
from repro.queries.languages import QueryLanguage, classify_query
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import ModelError


# ---------------------------------------------------------------------------
# Package size bounds
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ConstantBound:
    """``|N| ≤ Bp`` for a predefined constant ``Bp`` (Corollary 6.1)."""

    limit: int

    def max_size(self, database_size: int) -> int:
        return self.limit

    def is_constant(self) -> bool:
        return True

    def describe(self) -> str:
        return f"|N| ≤ {self.limit} (constant bound)"


@dataclass(frozen=True)
class PolynomialBound:
    """``|N| ≤ coefficient · |D|^degree`` — the paper's predefined polynomial ``p``."""

    coefficient: float = 1.0
    degree: int = 1

    def max_size(self, database_size: int) -> int:
        return max(0, int(self.coefficient * (database_size ** self.degree)))

    def is_constant(self) -> bool:
        return False

    def describe(self) -> str:
        return f"|N| ≤ {self.coefficient}·|D|^{self.degree} (polynomial bound)"


SizeBound = Union[ConstantBound, PolynomialBound]

SINGLETON_BOUND = ConstantBound(1)
LINEAR_BOUND = PolynomialBound(1.0, 1)


# ---------------------------------------------------------------------------
# The problem specification
# ---------------------------------------------------------------------------
@dataclass
class RecommendationProblem:
    """Inputs shared by RPP, FRP, MBP and CPP.

    Parameters mirror the paper's problem statements:
    ``(Q, D, Qc, cost(), val(), C, k)`` plus the package size bound.
    """

    database: Database
    query: Query
    cost: PackageCost
    val: PackageRating
    budget: float
    k: int = 1
    compatibility: CompatibilityConstraint = field(default_factory=EmptyConstraint)
    size_bound: SizeBound = SINGLETON_BOUND
    name: str = "recommendation problem"
    #: Declares that ``cost`` never decreases when items are added to a package.
    #: When set, the package enumerator prunes every superset of an over-budget
    #: package.  This is an optimisation hint, not part of the paper's model;
    #: it must only be set when the property genuinely holds (it does for
    #: counting costs, attribute sums of non-negative values and the
    #: consistency-style costs of the reductions).
    monotone_cost: bool = False
    #: Declares that supersets of an incompatible package stay incompatible
    #: (true for all "forbidden sub-pattern" constraints such as "no more than
    #: two museums" and for every Qc built from positive queries over RQ).
    antimonotone_compatibility: bool = False
    #: Declares that ``val`` never decreases when items are added to a package
    #: (true e.g. for attribute sums over non-negative values and for count
    #: ratings; false for the travel rating, which *minimises* total price).
    #: When set, :func:`~repro.core.enumeration.best_valid_packages` switches
    #: to a branch-and-bound top-k search that prunes lattice subtrees whose
    #: admissible rating upper bound cannot reach the current k-th best.  Like
    #: the other hints this is a declaration by the problem author: it can only
    #: affect running time when it genuinely holds, and must not be set
    #: otherwise.
    monotone_val: bool = False
    #: Whether compatibility verdicts are memoized (see
    #: :class:`~repro.core.compatibility.CompatibilityOracle`).  Caching never
    #: changes results — the oracle invalidates on database mutation — so this
    #: knob exists for the cache-on/off equivalence tests and ablations.
    cache_compatibility: bool = True
    _compatibility_oracle: Optional[CompatibilityOracle] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ModelError("k must be at least 1")

    # -- derived inputs -----------------------------------------------------------
    def language(self) -> QueryLanguage:
        """The query language LQ the selection query belongs to."""
        return classify_query(self.query)

    def has_compatibility_constraint(self) -> bool:
        """Whether ``Qc`` is present (not the empty query)."""
        return not self.compatibility.is_empty_constraint()

    def compatibility_oracle(self) -> CompatibilityOracle:
        """The (lazily created) memoized compatibility oracle for this problem.

        Every compatibility probe of this problem — validity checks, the
        enumerator's pruning hints, the heuristics — goes through one shared
        oracle, so overlapping sub-packages are checked against ``Qc`` once.
        The oracle is rebuilt if the constraint or database object changes
        (e.g. after :func:`dataclasses.replace`), and the problem transforms
        that keep both (``with_query``, ``with_budget``, ``with_k``,
        ``with_constant_bound``) carry the oracle over so QRPP-style searches
        share verdicts across derived problems.
        """
        oracle = self._compatibility_oracle
        if (
            oracle is None
            or oracle.constraint is not self.compatibility
            or oracle.database is not self.database
            or oracle.enabled != self.cache_compatibility
        ):
            oracle = CompatibilityOracle(
                self.compatibility, self.database, enabled=self.cache_compatibility
            )
            self._compatibility_oracle = oracle
        return oracle

    def _carrying_oracle(self, new: "RecommendationProblem") -> "RecommendationProblem":
        """Propagate the oracle onto a derived problem when it is still valid.

        The parent's oracle is created here if it does not exist yet (creation
        is cheap — an empty dict plus a version snapshot), so sibling problems
        derived from an untouched parent still end up sharing one cache; this
        is what makes the QRPP search reuse verdicts across relaxations.
        """
        if (
            new.database is self.database
            and new.compatibility is self.compatibility
            and new.cache_compatibility == self.cache_compatibility
        ):
            new._compatibility_oracle = self.compatibility_oracle()
        return new

    def max_package_size(self) -> int:
        """The effective bound on ``|N|`` for the current database."""
        return self.size_bound.max_size(self.database.size())

    def candidate_items(self) -> Relation:
        """``Q(D)``, the pool packages are drawn from."""
        return self.query.evaluate(self.database)

    def package_from_items(self, items: Iterable[Row]) -> Package:
        """Wrap raw answer tuples into a package over the answer schema."""
        return Package(self.query.output_schema(), items)

    def empty_package(self) -> Package:
        """The empty package over the answer schema."""
        return Package.empty(self.query.output_schema())

    # -- validity (Section 2, conditions (1)-(4)) ---------------------------------------
    def is_valid_package(
        self,
        package: Package,
        rating_bound: Optional[float] = None,
        candidate_items: Optional[Relation] = None,
        strict: bool = False,
    ) -> bool:
        """Conditions (1)-(4) plus, optionally, ``val(N) ≥ B`` (or ``> B``).

        ``candidate_items`` may be passed to avoid recomputing ``Q(D)`` when
        validating many packages against the same database.
        """
        if len(package) > self.max_package_size():
            return False
        answers = candidate_items if candidate_items is not None else self.candidate_items()
        answer_rows = answers.rows()
        if not all(item in answer_rows for item in package.items):
            return False
        if not self.compatibility_oracle().is_satisfied(package):
            return False
        if self.cost(package) > self.budget:
            return False
        if rating_bound is not None:
            rating = self.val(package)
            if strict:
                return rating > rating_bound
            return rating >= rating_bound
        return True

    def validity_report(self, package: Package) -> "dict[str, bool]":
        """Which of the validity conditions hold — useful in error messages."""
        answers = self.candidate_items().rows()
        return {
            "within_size_bound": len(package) <= self.max_package_size(),
            "subset_of_answers": all(item in answers for item in package.items),
            "compatible": self.compatibility_oracle().is_satisfied(package),
            "within_budget": self.cost(package) <= self.budget,
        }

    # -- selections (Section 2, conditions (5)-(6)) ----------------------------------------
    def ratings(self, selection: Selection) -> Tuple[float, ...]:
        """Ratings of the packages of a selection, in selection order."""
        return tuple(self.val(package) for package in selection)

    def min_rating(self, selection: Selection) -> float:
        """The smallest rating in a selection (the threshold outsiders must not beat)."""
        return min(self.ratings(selection)) if len(selection) else -math.inf

    # -- convenience transforms ---------------------------------------------------------
    def without_compatibility(self) -> "RecommendationProblem":
        """The same problem with ``Qc`` dropped (the Section 4.3 special case)."""
        return replace(self, compatibility=EmptyConstraint())

    def with_constant_bound(self, limit: int) -> "RecommendationProblem":
        """The same problem with a constant package-size bound (Corollary 6.1)."""
        return self._carrying_oracle(replace(self, size_bound=ConstantBound(limit)))

    def with_budget(self, budget: float) -> "RecommendationProblem":
        """The same problem with a different cost budget."""
        return self._carrying_oracle(replace(self, budget=budget))

    def with_k(self, k: int) -> "RecommendationProblem":
        """The same problem asking for a different number of packages."""
        return self._carrying_oracle(replace(self, k=k))

    def with_database(self, database: Database) -> "RecommendationProblem":
        """The same problem over a different database (used by ARPP)."""
        return replace(self, database=database)

    def pinned(self) -> "RecommendationProblem":
        """The same problem over a snapshot of its database, pinned now.

        The serving entry point: every read of the returned problem —
        candidate enumeration, compatibility probes, the solvers — resolves
        against the epoch current at this call, unaffected by later
        :meth:`~repro.relational.database.Database.apply_delta` commits on
        the live database.  The pinned problem gets its own fresh
        compatibility oracle (like any ``with_database``), whose verdicts are
        valid for exactly this epoch; share the *problem object* between the
        readers of one epoch to share those verdicts.  Pinning a problem
        whose database is already a snapshot returns an equivalent pin of the
        same epoch.
        """
        return self.with_database(self.database.snapshot())

    def with_query(self, query: Query) -> "RecommendationProblem":
        """The same problem with a different selection query (used by QRPP).

        The compatibility oracle is shared with the derived problem: ``Qc``
        and ``D`` are unchanged, so the relaxation search re-uses every verdict
        already computed for other relaxations of the same problem.
        """
        return self._carrying_oracle(replace(self, query=query))

    def describe(self) -> str:
        """A one-paragraph description used by examples and benchmarks."""
        return (
            f"{self.name}: top-{self.k} packages, LQ = {self.language().value}, "
            f"{'with' if self.has_compatibility_constraint() else 'without'} Qc, "
            f"{self.size_bound.describe()}, cost budget C = {self.budget}, "
            f"cost = {self.cost.describe()}, val = {self.val.describe()}"
        )


def item_recommendation_problem(
    database: Database,
    query: Query,
    utility: Callable[[Row], float],
    k: int = 1,
    name: str = "item recommendation",
) -> RecommendationProblem:
    """The item-recommendation special case as a package problem (Section 2).

    ``Qc`` is the empty query, ``cost(N) = |N|`` with ``cost(∅) = ∞``,
    ``C = 1`` (so packages are singletons), and ``val({s}) = f(s)``.
    """
    cost, rating, budget = item_embedding_functions(utility)
    return RecommendationProblem(
        database=database,
        query=query,
        cost=cost,
        val=rating,
        budget=budget,
        k=k,
        compatibility=EmptyConstraint(),
        size_bound=SINGLETON_BOUND,
        name=name,
    )
