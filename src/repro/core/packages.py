"""Packages of items.

A *package* is a finite set of items, where each item is a tuple of the answer
schema ``RQ`` of the selection query (Section 2).  Packages are immutable and
hashable so they can be collected into selections, compared for distinctness
(condition (6) of top-k selections), and used as dictionary keys by the
solvers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Iterator, Optional, Sequence, Tuple

from repro.relational.database import Relation, Row
from repro.relational.errors import ModelError
from repro.relational.ordering import row_sort_key
from repro.relational.schema import RelationSchema, Value


@dataclass(frozen=True)
class Package:
    """An immutable set of items sharing one answer schema."""

    schema: RelationSchema
    items: FrozenSet[Row]

    def __init__(self, schema: RelationSchema, items: Iterable[Sequence[Value]] = ()) -> None:
        object.__setattr__(self, "schema", schema)
        validated = frozenset(schema.validate_tuple(item) for item in items)
        object.__setattr__(self, "items", validated)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def trusted(
        cls,
        schema: RelationSchema,
        items: FrozenSet[Row],
        sorted_items: Optional[Tuple[Row, ...]] = None,
    ) -> "Package":
        """A package over items that are already validated answer tuples.

        The search engine builds one package per lattice node; re-validating
        every tuple against the schema there re-pays, per node, work the query
        evaluator already did once when producing ``Q(D)``.  The caller
        guarantees ``items`` is a frozenset of schema-valid plain tuples.
        ``sorted_items`` may be supplied when the caller already holds the
        items in :func:`~repro.relational.ordering.row_sort_key` order (the
        DFS extends packages in exactly that order), pre-seeding the
        :meth:`sorted_items` cache.
        """
        package = object.__new__(cls)
        object.__setattr__(package, "schema", schema)
        object.__setattr__(package, "items", items)
        if sorted_items is not None:
            object.__setattr__(package, "_sorted_items", sorted_items)
        return package

    @classmethod
    def empty(cls, schema: RelationSchema) -> "Package":
        """The empty package (usually excluded by ``cost(∅) = ∞``)."""
        return cls(schema, ())

    @classmethod
    def singleton(cls, schema: RelationSchema, item: Sequence[Value]) -> "Package":
        """A one-item package, the shape item recommendations use."""
        return cls(schema, (item,))

    @classmethod
    def from_relation(cls, relation: Relation) -> "Package":
        """All tuples of a relation as one package."""
        return cls(relation.schema, relation.rows())

    # -- basic protocol ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.items)

    def __contains__(self, item: Sequence[Value]) -> bool:
        return tuple(item) in self.items

    def is_empty(self) -> bool:
        """Whether the package has no items."""
        return not self.items

    def __hash__(self) -> int:
        return hash(self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Package):
            return NotImplemented
        return self.items == other.items and self.schema.attribute_names == other.schema.attribute_names

    # -- access helpers ---------------------------------------------------------------
    def sorted_items(self) -> Tuple[Row, ...]:
        """Items in a deterministic order (typed sort key, computed once).

        The order is defined by :func:`~repro.relational.ordering.row_sort_key`
        — numbers numerically, strings lexicographically — rather than the
        historical ``repr`` string order, which was slow on hot paths and
        collided for distinct values with equal reprs.  The tuple is cached on
        first use; packages are immutable, so the cache can never go stale.
        """
        cached = self.__dict__.get("_sorted_items")
        if cached is None:
            cached = tuple(sorted(self.items, key=row_sort_key))
            object.__setattr__(self, "_sorted_items", cached)
        return cached

    def sort_key(self) -> Tuple:
        """A total, deterministic order over packages with one schema.

        Used as the tie-breaker wherever equal-rated packages must be ranked
        (top-k selections, heuristic beams): packages compare by their
        typed-sorted item lists, so the ordering is stable across runs and
        independent of hash seeds and of ``repr`` formatting.
        """
        return tuple(row_sort_key(item) for item in self.sorted_items())

    def column(self, attribute: str) -> Tuple[Value, ...]:
        """All values of one attribute across the items (with duplicates)."""
        index = self.schema.index_of(attribute)
        return tuple(item[index] for item in self.sorted_items())

    def value_of(self, item: Row, attribute: str) -> Value:
        """The value of ``attribute`` in a specific item of the package."""
        if item not in self.items:
            raise ModelError(f"item {item!r} is not part of the package")
        return item[self.schema.index_of(attribute)]

    def as_relation(self, name: Optional[str] = None) -> Relation:
        """Materialise the package as a relation (used for Qc evaluation)."""
        schema = self.schema if name is None else self.schema.rename(name)
        return Relation(schema, self.items)

    def union(self, other: "Package") -> "Package":
        """The union of two packages over the same schema."""
        return Package(self.schema, self.items | other.items)

    def with_item(self, item: Sequence[Value]) -> "Package":
        """A copy of the package with one extra item."""
        return Package(self.schema, set(self.items) | {tuple(item)})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Package({len(self.items)} items over {self.schema.name})"


@dataclass(frozen=True)
class Selection:
    """A candidate top-k selection: an ordered collection of packages.

    Order does not affect the semantics (a selection is a set); keeping the
    packages in rating order makes results readable and deterministic.
    """

    packages: Tuple[Package, ...]

    def __init__(self, packages: Iterable[Package]) -> None:
        object.__setattr__(self, "packages", tuple(packages))

    def __len__(self) -> int:
        return len(self.packages)

    def __iter__(self) -> Iterator[Package]:
        return iter(self.packages)

    def __contains__(self, package: Package) -> bool:
        return package in self.packages

    def distinct(self) -> bool:
        """Condition (6): packages are pairwise distinct."""
        return len(set(self.packages)) == len(self.packages)

    def as_set(self) -> FrozenSet[Package]:
        """The underlying set of packages."""
        return frozenset(self.packages)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Selection({len(self.packages)} packages)"
