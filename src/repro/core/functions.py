"""Cost, rating and utility functions.

The paper only assumes ``cost()`` and ``val()`` are PTIME-computable functions
from packages to the reals, and ``f()`` a PTIME utility function on items.
This module provides the concrete functions used by the paper's examples and
reductions:

* counting costs (``cost(N) = |N|`` with ``cost(∅) = ∞`` so that the empty
  package is never recommended),
* attribute-sum costs (total visiting time of the POIs in a travel plan),
* constant ratings, attribute-sum ratings with either orientation (the paper's
  travel rating is *anti*-monotone in total price: the cheaper the better),
* weighted combinations, and
* adapters turning an item utility ``f()`` into the package functions of the
  item-recommendation special case.

All functions are small classes with a ``describe()`` method so benches and
examples can print what they measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.packages import Package
from repro.relational.database import Row
from repro.relational.schema import Value

#: ``cost(∅) = ∞`` in most of the paper's constructions.
INFINITY = math.inf

PackageFunction = Callable[[Package], float]
ItemUtility = Callable[[Row], float]


@dataclass(frozen=True)
class IncrementalAggregate:
    """O(1)-per-item evaluation of a package function along a search path.

    The enumeration engine extends packages one item at a time in sorted-item
    order; a function that can maintain a running *state* under that extension
    avoids re-aggregating the whole package at every lattice node.  The
    contract is exact equivalence with the function's ``__call__``: for any
    package built by folding ``extend`` over its sorted items,
    ``finish(state, size)`` must return bit-identical floats to calling the
    function on the materialised package (states are folded in the same order
    as :meth:`Package.sorted_items`, so even order-dependent float sums
    match).

    ``initial`` is the state of the empty package; ``extend(state, item)``
    returns the state after adding one item; ``finish(state, size)`` converts
    a state plus the package size into the function's value.
    """

    initial: object
    extend: Callable[[object, Row], object]
    finish: Callable[[object, int], float]


class PackageCost:
    """Base class of cost functions ``cost: packages → R``."""

    def __call__(self, package: Package) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def incremental(self, schema) -> Optional[IncrementalAggregate]:
        """An exact incremental evaluator, or ``None`` when the function
        cannot be threaded along a search path (the engine then falls back to
        whole-package evaluation at every node)."""
        return None

    def item_delta(self, schema) -> Optional[Callable[[Row], float]]:
        """The exact additive per-item cost, or ``None`` for non-additive costs.

        Returns ``delta(item)`` with ``cost(N) = Σ_{s∈N} delta(s)`` for every
        non-empty package ``N`` (the empty package may be special-cased to ∞).
        The branch-and-bound top-k search uses the deltas to cap how many more
        items a node's remaining budget can still afford, which tightens its
        rating upper bound; it must therefore be exact, not approximate.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


class PackageRating:
    """Base class of rating functions ``val: packages → R``."""

    def __call__(self, package: Package) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def incremental(self, schema) -> Optional[IncrementalAggregate]:
        """An exact incremental evaluator, or ``None`` (see PackageCost)."""
        return None

    def item_gain(self, schema) -> Optional[Callable[[Row], float]]:
        """An admissible per-item bound on how much one item can raise ``val``.

        Returns a callable ``gain(item)`` such that for every *non-empty*
        package ``N`` not containing ``item``,
        ``val(N ∪ {item}) - val(N) ≤ gain(item)``, or ``None`` when no such
        bound is available.  The contract deliberately excludes the empty
        package: ratings may jump arbitrarily (even from ``-∞``) between
        ``∅`` and the first item, so the branch-and-bound search never
        applies gains across that boundary — its root-level bound is
        conservative instead.  Within the lattice the search sums the
        positive gains of the items still reachable from a node to bound the
        best rating in its subtree.  Admissibility is exact for
        integer-valued attributes (the repo's workloads and reductions); the
        bound is only consulted when the problem declares ``monotone_val``.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Cost functions
# ---------------------------------------------------------------------------
@dataclass
class CountCost(PackageCost):
    """``cost(N) = |N|`` for non-empty N and ``cost(∅) = ∞``.

    This is the cost function used by almost every reduction in the paper: a
    budget of ``C = 1`` then forces packages to be singletons, ``C = m``
    allows up to ``m`` items.
    """

    empty_cost: float = INFINITY

    def __call__(self, package: Package) -> float:
        return self.empty_cost if package.is_empty() else float(len(package))

    def incremental(self, schema) -> IncrementalAggregate:
        empty_cost = self.empty_cost
        return IncrementalAggregate(
            initial=None,
            extend=lambda state, item: None,
            finish=lambda state, size: empty_cost if size == 0 else float(size),
        )

    def item_delta(self, schema) -> Callable[[Row], float]:
        return lambda item: 1.0

    def describe(self) -> str:
        return "cost(N) = |N|, cost(∅) = ∞"


@dataclass
class AttributeSumCost(PackageCost):
    """``cost(N) = Σ_{s ∈ N} s.attribute`` (e.g. total visiting time)."""

    attribute: str
    empty_cost: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_cost
        return float(sum(package.column(self.attribute)))

    def incremental(self, schema) -> IncrementalAggregate:
        index = schema.index_of(self.attribute)
        empty_cost = self.empty_cost
        return IncrementalAggregate(
            initial=0,
            extend=lambda state, item: state + item[index],
            finish=lambda state, size: empty_cost if size == 0 else float(state),
        )

    def item_delta(self, schema) -> Callable[[Row], float]:
        index = schema.index_of(self.attribute)
        return lambda item: float(item[index])

    def describe(self) -> str:
        return f"cost(N) = sum of {self.attribute}"


@dataclass
class PredicateCost(PackageCost):
    """``cost(N) = low`` when a predicate holds, ``high`` otherwise.

    Several data-complexity reductions (Lemma 4.4, the MBP DP-hardness proof)
    use exactly this shape: the predicate checks that the package encodes a
    consistent truth assignment and the budget ``C`` sits between ``low`` and
    ``high``.
    """

    predicate: Callable[[Package], bool]
    low: float = 1.0
    high: float = 2.0
    description: str = "predicate cost"

    def __call__(self, package: Package) -> float:
        return self.low if self.predicate(package) else self.high

    def describe(self) -> str:
        return self.description


@dataclass
class CallableCost(PackageCost):
    """Wrap an arbitrary PTIME callable as a cost function."""

    function: PackageFunction
    description: str = "callable cost"

    def __call__(self, package: Package) -> float:
        return float(self.function(package))

    def describe(self) -> str:
        return self.description


# ---------------------------------------------------------------------------
# Rating functions
# ---------------------------------------------------------------------------
@dataclass
class ConstantRating(PackageRating):
    """``val(N) = value`` for every package (used by many reductions)."""

    value: float = 1.0

    def __call__(self, package: Package) -> float:
        return self.value

    def incremental(self, schema) -> IncrementalAggregate:
        value = self.value
        return IncrementalAggregate(
            initial=None,
            extend=lambda state, item: None,
            finish=lambda state, size: value,
        )

    def item_gain(self, schema) -> Callable[[Row], float]:
        return lambda item: 0.0

    def describe(self) -> str:
        return f"val(N) = {self.value}"


@dataclass
class CountRating(PackageRating):
    """``val(N) = |N|`` — the more items satisfied, the better."""

    def __call__(self, package: Package) -> float:
        return float(len(package))

    def incremental(self, schema) -> IncrementalAggregate:
        return IncrementalAggregate(
            initial=None,
            extend=lambda state, item: None,
            finish=lambda state, size: float(size),
        )

    def item_gain(self, schema) -> Callable[[Row], float]:
        return lambda item: 1.0

    def describe(self) -> str:
        return "val(N) = |N|"


@dataclass
class AttributeSumRating(PackageRating):
    """``val(N) = sign · Σ s.attribute``.

    ``sign=-1`` models the paper's travel rating where a *higher* total price
    means a *lower* rating.
    """

    attribute: str
    sign: float = 1.0
    empty_value: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_value
        return self.sign * float(sum(package.column(self.attribute)))

    def incremental(self, schema) -> IncrementalAggregate:
        index = schema.index_of(self.attribute)
        sign, empty_value = self.sign, self.empty_value
        return IncrementalAggregate(
            initial=0,
            extend=lambda state, item: state + item[index],
            finish=lambda state, size: empty_value if size == 0 else sign * float(state),
        )

    def item_gain(self, schema) -> Callable[[Row], float]:
        index = schema.index_of(self.attribute)
        sign = self.sign
        return lambda item: sign * float(item[index])

    def describe(self) -> str:
        direction = "maximise" if self.sign > 0 else "minimise"
        return f"val(N) = {direction} sum of {self.attribute}"


@dataclass
class WeightedSumRating(PackageRating):
    """``val(N) = Σ_attr weight[attr] · Σ s.attr`` — a linear multi-criteria rating."""

    weights: Mapping[str, float]
    empty_value: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_value
        total = 0.0
        for attribute, weight in self.weights.items():
            total += weight * float(sum(package.column(attribute)))
        return total

    def incremental(self, schema) -> IncrementalAggregate:
        # The state keeps one running sum per attribute so that ``finish``
        # combines them in the same attribute-major order as ``__call__`` —
        # float addition is order-dependent, and the contract is bit-identical
        # results.
        indexed = tuple((schema.index_of(attr), weight) for attr, weight in self.weights.items())
        empty_value = self.empty_value

        def extend(state, item):
            return tuple(s + item[index] for s, (index, _) in zip(state, indexed))

        def finish(state, size):
            if size == 0:
                return empty_value
            total = 0.0
            for s, (_, weight) in zip(state, indexed):
                total += weight * float(s)
            return total

        return IncrementalAggregate(
            initial=tuple(0 for _ in indexed), extend=extend, finish=finish
        )

    def item_gain(self, schema) -> Callable[[Row], float]:
        indexed = tuple((schema.index_of(attr), weight) for attr, weight in self.weights.items())
        return lambda item: sum(weight * float(item[index]) for index, weight in indexed)

    def describe(self) -> str:
        parts = " + ".join(f"{w}·{a}" for a, w in sorted(self.weights.items()))
        return f"val(N) = {parts}"


@dataclass
class MinAttributeRating(PackageRating):
    """``val(N) = min s.attribute`` — a bottleneck rating (weakest item counts)."""

    attribute: str
    empty_value: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_value
        return float(min(package.column(self.attribute)))

    def incremental(self, schema) -> IncrementalAggregate:
        index = schema.index_of(self.attribute)
        empty_value = self.empty_value

        def extend(state, item):
            value = item[index]
            return value if state is None or value < state else state

        return IncrementalAggregate(
            initial=None,
            extend=extend,
            finish=lambda state, size: empty_value if size == 0 else float(state),
        )

    def item_gain(self, schema) -> Callable[[Row], float]:
        # Adding an item to a non-empty package can never raise a bottleneck
        # rating (the ∅ boundary is outside the gain contract).
        return lambda item: 0.0

    def describe(self) -> str:
        return f"val(N) = min {self.attribute}"


@dataclass
class TableRating(PackageRating):
    """A rating given by an explicit table of packages, with a default.

    The SAT-UNSAT reduction rates the four possible answer tuples
    ``(1,0) → 2, (1,1)/(0,1) → 3, (0,0) → 1``; a table rating states such
    case analyses directly.
    """

    table: Mapping[Package, float]
    default: float = 0.0

    def __call__(self, package: Package) -> float:
        return float(self.table.get(package, self.default))

    def describe(self) -> str:
        return f"table rating over {len(self.table)} packages"


@dataclass
class CallableRating(PackageRating):
    """Wrap an arbitrary PTIME callable as a rating function."""

    function: PackageFunction
    description: str = "callable rating"

    def __call__(self, package: Package) -> float:
        return float(self.function(package))

    def describe(self) -> str:
        return self.description


# ---------------------------------------------------------------------------
# Item utilities and the item→package embedding (Section 2)
# ---------------------------------------------------------------------------
@dataclass
class AttributeUtility:
    """``f(s) = sign · s.attribute`` for items of a given answer schema."""

    attribute: str
    sign: float = 1.0

    def for_schema(self, schema) -> ItemUtility:
        index = schema.index_of(self.attribute)

        def utility(item: Row) -> float:
            return self.sign * float(item[index])

        return utility

    def describe(self) -> str:
        direction = "maximise" if self.sign > 0 else "minimise"
        return f"f(s) = {direction} {self.attribute}"


@dataclass
class WeightedItemUtility:
    """``f(s) = Σ weight[attr] · s.attr`` — e.g. airfare and duration with weights."""

    weights: Mapping[str, float]

    def for_schema(self, schema) -> ItemUtility:
        indexed = [(schema.index_of(attr), weight) for attr, weight in self.weights.items()]

        def utility(item: Row) -> float:
            return sum(weight * float(item[index]) for index, weight in indexed)

        return utility

    def describe(self) -> str:
        parts = " + ".join(f"{w}·{a}" for a, w in sorted(self.weights.items()))
        return f"f(s) = {parts}"


@dataclass
class UtilityRating(PackageRating):
    """``val({s}) = f(s)`` — the package rating induced by an item utility.

    Defined on singletons; other packages get ``-∞`` so they can never win,
    matching the item-recommendation embedding of Section 2 (where the count
    cost and budget ``C = 1`` already restrict packages to singletons).
    """

    utility: ItemUtility

    def __call__(self, package: Package) -> float:
        if len(package) != 1:
            return -INFINITY
        (item,) = package.items
        return float(self.utility(item))

    def incremental(self, schema) -> IncrementalAggregate:
        # State: the first item added (only consulted when size == 1).  No
        # ``item_gain`` is possible — the rating jumps from -∞ back up when an
        # item is removed, so no per-item bound is admissible.
        utility = self.utility
        return IncrementalAggregate(
            initial=None,
            extend=lambda state, item: item if state is None else state,
            finish=lambda state, size: float(utility(state)) if size == 1 else -INFINITY,
        )

    def describe(self) -> str:
        return "val({s}) = f(s)"


def item_embedding_functions(utility: ItemUtility) -> Tuple[PackageCost, PackageRating, float]:
    """The (cost, val, C) triple embedding item selections into package selections.

    Section 2: ``cost(N) = |N|`` with ``cost(∅) = ∞``, ``C = 1`` and
    ``val({s}) = f(s)``.
    """
    return CountCost(), UtilityRating(utility), 1.0
