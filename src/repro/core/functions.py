"""Cost, rating and utility functions.

The paper only assumes ``cost()`` and ``val()`` are PTIME-computable functions
from packages to the reals, and ``f()`` a PTIME utility function on items.
This module provides the concrete functions used by the paper's examples and
reductions:

* counting costs (``cost(N) = |N|`` with ``cost(∅) = ∞`` so that the empty
  package is never recommended),
* attribute-sum costs (total visiting time of the POIs in a travel plan),
* constant ratings, attribute-sum ratings with either orientation (the paper's
  travel rating is *anti*-monotone in total price: the cheaper the better),
* weighted combinations, and
* adapters turning an item utility ``f()`` into the package functions of the
  item-recommendation special case.

All functions are small classes with a ``describe()`` method so benches and
examples can print what they measured.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.packages import Package
from repro.relational.database import Row
from repro.relational.schema import Value

#: ``cost(∅) = ∞`` in most of the paper's constructions.
INFINITY = math.inf

PackageFunction = Callable[[Package], float]
ItemUtility = Callable[[Row], float]


class PackageCost:
    """Base class of cost functions ``cost: packages → R``."""

    def __call__(self, package: Package) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class PackageRating:
    """Base class of rating functions ``val: packages → R``."""

    def __call__(self, package: Package) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


# ---------------------------------------------------------------------------
# Cost functions
# ---------------------------------------------------------------------------
@dataclass
class CountCost(PackageCost):
    """``cost(N) = |N|`` for non-empty N and ``cost(∅) = ∞``.

    This is the cost function used by almost every reduction in the paper: a
    budget of ``C = 1`` then forces packages to be singletons, ``C = m``
    allows up to ``m`` items.
    """

    empty_cost: float = INFINITY

    def __call__(self, package: Package) -> float:
        return self.empty_cost if package.is_empty() else float(len(package))

    def describe(self) -> str:
        return "cost(N) = |N|, cost(∅) = ∞"


@dataclass
class AttributeSumCost(PackageCost):
    """``cost(N) = Σ_{s ∈ N} s.attribute`` (e.g. total visiting time)."""

    attribute: str
    empty_cost: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_cost
        return float(sum(package.column(self.attribute)))

    def describe(self) -> str:
        return f"cost(N) = sum of {self.attribute}"


@dataclass
class PredicateCost(PackageCost):
    """``cost(N) = low`` when a predicate holds, ``high`` otherwise.

    Several data-complexity reductions (Lemma 4.4, the MBP DP-hardness proof)
    use exactly this shape: the predicate checks that the package encodes a
    consistent truth assignment and the budget ``C`` sits between ``low`` and
    ``high``.
    """

    predicate: Callable[[Package], bool]
    low: float = 1.0
    high: float = 2.0
    description: str = "predicate cost"

    def __call__(self, package: Package) -> float:
        return self.low if self.predicate(package) else self.high

    def describe(self) -> str:
        return self.description


@dataclass
class CallableCost(PackageCost):
    """Wrap an arbitrary PTIME callable as a cost function."""

    function: PackageFunction
    description: str = "callable cost"

    def __call__(self, package: Package) -> float:
        return float(self.function(package))

    def describe(self) -> str:
        return self.description


# ---------------------------------------------------------------------------
# Rating functions
# ---------------------------------------------------------------------------
@dataclass
class ConstantRating(PackageRating):
    """``val(N) = value`` for every package (used by many reductions)."""

    value: float = 1.0

    def __call__(self, package: Package) -> float:
        return self.value

    def describe(self) -> str:
        return f"val(N) = {self.value}"


@dataclass
class CountRating(PackageRating):
    """``val(N) = |N|`` — the more items satisfied, the better."""

    def __call__(self, package: Package) -> float:
        return float(len(package))

    def describe(self) -> str:
        return "val(N) = |N|"


@dataclass
class AttributeSumRating(PackageRating):
    """``val(N) = sign · Σ s.attribute``.

    ``sign=-1`` models the paper's travel rating where a *higher* total price
    means a *lower* rating.
    """

    attribute: str
    sign: float = 1.0
    empty_value: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_value
        return self.sign * float(sum(package.column(self.attribute)))

    def describe(self) -> str:
        direction = "maximise" if self.sign > 0 else "minimise"
        return f"val(N) = {direction} sum of {self.attribute}"


@dataclass
class WeightedSumRating(PackageRating):
    """``val(N) = Σ_attr weight[attr] · Σ s.attr`` — a linear multi-criteria rating."""

    weights: Mapping[str, float]
    empty_value: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_value
        total = 0.0
        for attribute, weight in self.weights.items():
            total += weight * float(sum(package.column(attribute)))
        return total

    def describe(self) -> str:
        parts = " + ".join(f"{w}·{a}" for a, w in sorted(self.weights.items()))
        return f"val(N) = {parts}"


@dataclass
class MinAttributeRating(PackageRating):
    """``val(N) = min s.attribute`` — a bottleneck rating (weakest item counts)."""

    attribute: str
    empty_value: float = 0.0

    def __call__(self, package: Package) -> float:
        if package.is_empty():
            return self.empty_value
        return float(min(package.column(self.attribute)))

    def describe(self) -> str:
        return f"val(N) = min {self.attribute}"


@dataclass
class TableRating(PackageRating):
    """A rating given by an explicit table of packages, with a default.

    The SAT-UNSAT reduction rates the four possible answer tuples
    ``(1,0) → 2, (1,1)/(0,1) → 3, (0,0) → 1``; a table rating states such
    case analyses directly.
    """

    table: Mapping[Package, float]
    default: float = 0.0

    def __call__(self, package: Package) -> float:
        return float(self.table.get(package, self.default))

    def describe(self) -> str:
        return f"table rating over {len(self.table)} packages"


@dataclass
class CallableRating(PackageRating):
    """Wrap an arbitrary PTIME callable as a rating function."""

    function: PackageFunction
    description: str = "callable rating"

    def __call__(self, package: Package) -> float:
        return float(self.function(package))

    def describe(self) -> str:
        return self.description


# ---------------------------------------------------------------------------
# Item utilities and the item→package embedding (Section 2)
# ---------------------------------------------------------------------------
@dataclass
class AttributeUtility:
    """``f(s) = sign · s.attribute`` for items of a given answer schema."""

    attribute: str
    sign: float = 1.0

    def for_schema(self, schema) -> ItemUtility:
        index = schema.index_of(self.attribute)

        def utility(item: Row) -> float:
            return self.sign * float(item[index])

        return utility

    def describe(self) -> str:
        direction = "maximise" if self.sign > 0 else "minimise"
        return f"f(s) = {direction} {self.attribute}"


@dataclass
class WeightedItemUtility:
    """``f(s) = Σ weight[attr] · s.attr`` — e.g. airfare and duration with weights."""

    weights: Mapping[str, float]

    def for_schema(self, schema) -> ItemUtility:
        indexed = [(schema.index_of(attr), weight) for attr, weight in self.weights.items()]

        def utility(item: Row) -> float:
            return sum(weight * float(item[index]) for index, weight in indexed)

        return utility

    def describe(self) -> str:
        parts = " + ".join(f"{w}·{a}" for a, w in sorted(self.weights.items()))
        return f"f(s) = {parts}"


@dataclass
class UtilityRating(PackageRating):
    """``val({s}) = f(s)`` — the package rating induced by an item utility.

    Defined on singletons; other packages get ``-∞`` so they can never win,
    matching the item-recommendation embedding of Section 2 (where the count
    cost and budget ``C = 1`` already restrict packages to singletons).
    """

    utility: ItemUtility

    def __call__(self, package: Package) -> float:
        if len(package) != 1:
            return -INFINITY
        (item,) = package.items
        return float(self.utility(item))

    def describe(self) -> str:
        return "val({s}) = f(s)"


def item_embedding_functions(utility: ItemUtility) -> Tuple[PackageCost, PackageRating, float]:
    """The (cost, val, C) triple embedding item selections into package selections.

    Section 2: ``cost(N) = |N|`` with ``cost(∅) = ∞``, ``C = 1`` and
    ``val({s}) = f(s)``.
    """
    return CountCost(), UtilityRating(utility), 1.0
