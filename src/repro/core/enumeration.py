"""Enumeration of candidate and valid packages.

The deterministic counterpart of the "guess polynomially many tuples" steps in
the paper's upper-bound algorithms: every subset of ``Q(D)`` up to the package
size bound is a candidate, and validity filters them.  The enumeration is
exponential in ``|Q(D)|`` when the bound is polynomial in ``|D|`` — exactly
the data-complexity regime the paper proves NP/coNP/#P-hard — and polynomial
when the bound is a constant (Corollary 6.1).

Two pruning hints on :class:`~repro.core.model.RecommendationProblem` keep the
search practical on realistic instances without changing its worst case:
``monotone_cost`` prunes supersets of over-budget packages and
``antimonotone_compatibility`` prunes supersets of incompatible packages.
Both are declarations by the problem author; when unset the enumeration is
fully exhaustive.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.model import RecommendationProblem
from repro.core.packages import Package
from repro.relational.database import Relation, Row
from repro.relational.errors import BudgetExceededError


def enumerate_candidate_packages(
    problem: RecommendationProblem,
    candidate_items: Optional[Relation] = None,
    include_empty: bool = False,
    max_candidates: Optional[int] = None,
) -> Iterator[Package]:
    """All subsets of ``Q(D)`` whose size respects the bound, smallest first.

    This enumeration applies no pruning; it is used by tests and by callers
    that need the raw candidate space.  ``max_candidates`` is a resource guard
    for the benchmark harness; exceeding it raises
    :class:`~repro.relational.errors.BudgetExceededError` so a runaway
    configuration fails loudly instead of silently truncating results.
    """
    answers = candidate_items if candidate_items is not None else problem.candidate_items()
    items: Tuple[Row, ...] = tuple(sorted(answers.rows(), key=repr))
    schema = problem.query.output_schema()
    limit = min(problem.max_package_size(), len(items))
    produced = 0
    if include_empty:
        yield Package.empty(schema)
        produced += 1
    for size in range(1, limit + 1):
        for subset in combinations(items, size):
            produced += 1
            if max_candidates is not None and produced > max_candidates:
                raise BudgetExceededError(
                    f"candidate-package enumeration exceeded {max_candidates} packages"
                )
            yield Package(schema, subset)


def _prunable(problem: RecommendationProblem, package: Package) -> bool:
    """Whether the whole superset subtree of ``package`` can be skipped.

    The compatibility probe goes through the problem's memoized oracle: the
    same package is typically probed again by the full validity check (and by
    heuristics exploring the same region of the lattice), so the second look
    is a cache hit instead of a ``Qc`` evaluation.
    """
    if problem.monotone_cost and problem.cost(package) > problem.budget:
        return True
    if problem.antimonotone_compatibility and not problem.compatibility_oracle().is_satisfied(
        package
    ):
        return True
    return False


def enumerate_valid_packages(
    problem: RecommendationProblem,
    rating_bound: Optional[float] = None,
    strict: bool = False,
    exclude: Iterable[Package] = (),
    candidate_items: Optional[Relation] = None,
    max_candidates: Optional[int] = None,
) -> Iterator[Package]:
    """All valid packages, optionally rated ≥ (or >) ``rating_bound`` and not excluded.

    The search is a depth-first traversal of the subset lattice of ``Q(D)``
    restricted to the package size bound; the pruning hints of the problem cut
    subtrees that provably contain no valid package.  Every yielded package has
    passed the full validity check, so the hints can only affect running time,
    never soundness.
    """
    answers = candidate_items if candidate_items is not None else problem.candidate_items()
    items: Tuple[Row, ...] = tuple(sorted(answers.rows(), key=repr))
    schema = problem.query.output_schema()
    limit = min(problem.max_package_size(), len(items))
    excluded: FrozenSet[Package] = frozenset(exclude)
    examined = 0

    def dfs(start: int, current: Tuple[Row, ...]) -> Iterator[Package]:
        nonlocal examined
        for index in range(start, len(items)):
            extended = current + (items[index],)
            examined += 1
            if max_candidates is not None and examined > max_candidates:
                raise BudgetExceededError(
                    f"valid-package enumeration exceeded {max_candidates} candidates"
                )
            package = Package(schema, extended)
            if _prunable(problem, package):
                continue
            if package not in excluded and problem.is_valid_package(
                package, rating_bound=rating_bound, candidate_items=answers, strict=strict
            ):
                yield package
            if len(extended) < limit:
                yield from dfs(index + 1, extended)

    yield from dfs(0, ())


def count_valid_packages(
    problem: RecommendationProblem,
    rating_bound: Optional[float] = None,
    strict: bool = False,
    max_candidates: Optional[int] = None,
) -> int:
    """``|{N valid : val(N) ≥ B}|`` — the raw quantity behind CPP."""
    return sum(
        1
        for _ in enumerate_valid_packages(
            problem, rating_bound=rating_bound, strict=strict, max_candidates=max_candidates
        )
    )


def best_valid_packages(
    problem: RecommendationProblem,
    how_many: int,
    candidate_items: Optional[Relation] = None,
    max_candidates: Optional[int] = None,
) -> Tuple[Package, ...]:
    """The ``how_many`` highest-rated valid packages (ties broken deterministically)."""
    answers = candidate_items if candidate_items is not None else problem.candidate_items()
    scored = [
        (problem.val(package), package)
        for package in enumerate_valid_packages(
            problem, candidate_items=answers, max_candidates=max_candidates
        )
    ]
    scored.sort(key=lambda pair: (-pair[0], repr(pair[1].sorted_items())))
    return tuple(package for _, package in scored[:how_many])


def exists_valid_package(
    problem: RecommendationProblem,
    rating_bound: Optional[float] = None,
    strict: bool = False,
    exclude: Iterable[Package] = (),
    candidate_items: Optional[Relation] = None,
) -> Optional[Package]:
    """A witness valid package meeting the rating condition, or ``None``.

    This is the deterministic realisation of the paper's EXISTPACK≥ oracle;
    because the implementation is a search rather than a nondeterministic
    guess, it can return the witness itself, which the FRP solver exploits.
    """
    for package in enumerate_valid_packages(
        problem,
        rating_bound=rating_bound,
        strict=strict,
        exclude=exclude,
        candidate_items=candidate_items,
    ):
        return package
    return None
