"""The package-lattice search engine.

The deterministic counterpart of the "guess polynomially many tuples" steps in
the paper's upper-bound algorithms: every subset of ``Q(D)`` up to the package
size bound is a candidate, and validity filters them.  The enumeration is
exponential in ``|Q(D)|`` when the bound is polynomial in ``|D|`` — exactly
the data-complexity regime the paper proves NP/coNP/#P-hard — and polynomial
when the bound is a constant (Corollary 6.1).

Every solver (RPP, CPP, MBP, FRP, the heuristics and the QRPP/ARPP searches)
rides one shared :class:`PackageSearchEngine`, an incremental depth-first
traversal of the subset lattice that

* threads running cost and rating state along the DFS whenever the problem's
  functions expose an exact :class:`~repro.core.functions.IncrementalAggregate`
  (falling back to whole-package evaluation otherwise),
* builds packages through the trusted fast path
  (:meth:`~repro.core.packages.Package.trusted`) — items drawn from ``Q(D)``
  were already validated by the query evaluator,
* probes the compatibility oracle exactly once per lattice node (the verdict
  serves both the anti-monotone pruning hint and the validity check),
* skips the ``N ⊆ Q(D)`` membership scan entirely (true by construction), and
* supports a branch-and-bound top-k mode and a non-materializing counting
  mode on top of the plain enumeration.

Three pruning hints on :class:`~repro.core.model.RecommendationProblem` keep
the search practical on realistic instances without changing its worst case:
``monotone_cost`` prunes supersets of over-budget packages,
``antimonotone_compatibility`` prunes supersets of incompatible packages, and
``monotone_val`` lets :func:`best_valid_packages` bound subtrees whose best
achievable rating cannot reach the current k-th best.  All three are
declarations by the problem author; when unset the search is fully
exhaustive.

The pre-engine recursive enumerator is retained as
:func:`enumerate_valid_packages_reference` (mirroring
``enumerate_bindings_naive`` in the query evaluator), and
``tests/test_enumeration_differential.py`` keeps engine and reference
provably equivalent on 100+ random problems.
"""

from __future__ import annotations

import math
from bisect import insort
from itertools import combinations
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.model import RecommendationProblem
from repro.core.packages import Package, Selection
from repro.observability import metrics as _metrics
from repro.relational.database import Relation, Row
from repro.relational.errors import BudgetExceededError
from repro.relational.ordering import row_sort_key
from repro.resilience.deadline import current_deadline

#: Check the request deadline once per this many lattice nodes.  A power of
#: two, so ``examined & (N - 1)`` is the gate; the overshoot past an expired
#: deadline is bounded by one stride.
_DEADLINE_STRIDE = 64


class _SearchDone(Exception):
    """Internal signal: the counting scan reached its early-exit threshold."""


def _prune_threshold(worst_rating: float) -> float:
    """The bound value below which a subtree is provably outside the top-k.

    For integer-valued ratings (the repo's workloads and reductions — the
    Theorem 5.1 solver even *requires* them) the gains-based upper bound is
    exact and any ``bound < worst`` subtree is safe to cut.  For float-valued
    ratings the bound sums per-item gains in a different order than the
    incremental rating fold, so non-associative float addition can leave the
    true rating an ULP above the bound; the relative slack here makes the
    comparison conservative enough to absorb that, at the cost of exploring a
    vanishingly thin band of extra nodes.  Slack can only *reduce* pruning,
    so results remain bit-identical to the exhaustive sort either way.
    """
    return worst_rating - 1e-9 * (1.0 + abs(worst_rating))


class PackageSearchEngine:
    """A stateful incremental DFS over the subset lattice of ``Q(D)``.

    One engine is bound to one ``(problem, candidate items)`` pair; it
    pre-sorts the candidate items by typed sort key, compiles the problem's
    cost and rating functions into incremental evaluators when possible, and
    exposes the search entry points every solver uses.  Engines are cheap to
    construct (one sort plus a few closures) and are built per solver call,
    so they can never observe a stale ``Q(D)``.

    Concurrency: an engine's search state lives on the stack of each entry
    point, but every probe funnels into the problem's shared
    :class:`~repro.core.compatibility.CompatibilityOracle`, whose
    version-check-then-clear is not synchronised.  Against a *live* database
    that makes engines single-threaded; against a problem pinned to a
    :class:`~repro.relational.database.DatabaseSnapshot` the version check
    can never fire (pinned relations are frozen), so any number of reader
    threads may run solvers over one pinned problem concurrently — the
    serving layer's whole read path is built on that guarantee.
    """

    __slots__ = (
        "problem",
        "answers",
        "schema",
        "items",
        "limit",
        "max_size",
        "oracle",
        "budget",
        "monotone_cost",
        "antimonotone",
        "_cost_inc",
        "_val_inc",
    )

    def __init__(
        self,
        problem: RecommendationProblem,
        candidate_items: Optional[Relation] = None,
    ) -> None:
        self.problem = problem
        answers = candidate_items if candidate_items is not None else problem.candidate_items()
        self.answers = answers
        self.schema = problem.query.output_schema()
        self.items: Tuple[Row, ...] = tuple(sorted(answers.rows(), key=row_sort_key))
        self.max_size = problem.max_package_size()
        self.limit = min(self.max_size, len(self.items))
        self.oracle = problem.compatibility_oracle()
        self.budget = problem.budget
        self.monotone_cost = problem.monotone_cost
        self.antimonotone = problem.antimonotone_compatibility
        self._cost_inc = problem.cost.incremental(self.schema)
        self._val_inc = problem.val.incremental(self.schema)

    # -- trusted package construction ------------------------------------------
    def singleton(self, item: Row) -> Package:
        """A trusted one-item package over an item drawn from ``Q(D)``."""
        return Package.trusted(self.schema, frozenset((item,)), (item,))

    def extend(self, package: Package, item: Row) -> Package:
        """A trusted copy of ``package`` with one more ``Q(D)`` item."""
        return Package.trusted(self.schema, package.items | {item})

    def package(self, items: Iterable[Row]) -> Package:
        """A trusted package over items drawn from ``Q(D)``."""
        return Package.trusted(self.schema, frozenset(items))

    # -- validity for externally assembled candidates --------------------------
    def is_valid_candidate(
        self,
        package: Package,
        rating_bound: Optional[float] = None,
        strict: bool = False,
    ) -> bool:
        """Validity of a package whose items are known to come from ``Q(D)``.

        Same conditions as
        :meth:`~repro.core.model.RecommendationProblem.is_valid_package`
        minus the ``N ⊆ Q(D)`` membership scan, which holds by construction
        for packages the heuristics assemble from engine items.
        """
        if len(package) > self.max_size:
            return False
        if not self.oracle.is_satisfied(package):
            return False
        if self.problem.cost(package) > self.budget:
            return False
        if rating_bound is not None:
            rating = self.problem.val(package)
            return rating > rating_bound if strict else rating >= rating_bound
        return True

    # -- cost/rating threading -------------------------------------------------
    def _cost_path(self):
        """(initial state, extend, value-at-node) for the cost function."""
        if self._cost_inc is not None:
            inc = self._cost_inc
            return inc.initial, inc.extend, lambda state, size, package: inc.finish(state, size)
        cost = self.problem.cost
        return None, None, lambda state, size, package: cost(package)

    def _val_path(self):
        """(initial state, extend, value-at-node) for the rating function."""
        if self._val_inc is not None:
            inc = self._val_inc
            return inc.initial, inc.extend, lambda state, size, package: inc.finish(state, size)
        val = self.problem.val
        return None, None, lambda state, size, package: val(package)

    # -- enumeration -----------------------------------------------------------
    def iter_valid(
        self,
        rating_bound: Optional[float] = None,
        strict: bool = False,
        exclude: Iterable[Package] = (),
        max_candidates: Optional[int] = None,
    ) -> Iterator[Package]:
        """All valid packages, optionally rated ≥ (or >) ``rating_bound``.

        Packages are yielded in DFS order over the typed-sorted items; every
        yielded package has passed the full validity check, so the pruning
        hints can only affect running time, never soundness.
        """
        items, limit = self.items, self.limit
        if limit <= 0:
            return
        schema, oracle, budget = self.schema, self.oracle, self.budget
        monotone_cost, antimonotone = self.monotone_cost, self.antimonotone
        excluded: FrozenSet[Package] = frozenset(exclude)
        check_rating = rating_bound is not None
        cost_init, cost_extend, cost_at = self._cost_path()
        val_init, val_extend, val_at = self._val_path()
        if not check_rating:  # the rating never gets consulted: skip threading it
            val_init, val_extend = None, None
        examined = 0
        pruned = 0
        # Read at call time, never in __init__: the ExistPack oracle shares
        # one engine across requests, so a construction-time capture would
        # leak the first request's deadline into every later one.
        deadline = current_deadline()
        if deadline is not None:
            deadline.check()

        def dfs(
            start: int,
            prefix: Tuple[Row, ...],
            item_set: FrozenSet[Row],
            cost_state,
            val_state,
        ) -> Iterator[Package]:
            nonlocal examined, pruned
            for index in range(start, len(items)):
                item = items[index]
                extended = prefix + (item,)
                examined += 1
                if max_candidates is not None and examined > max_candidates:
                    raise BudgetExceededError(
                        f"valid-package enumeration exceeded {max_candidates} candidates"
                    )
                if deadline is not None and not examined & (_DEADLINE_STRIDE - 1):
                    deadline.tick(_DEADLINE_STRIDE)
                size = len(extended)
                next_cost = cost_extend(cost_state, item) if cost_extend else None
                if monotone_cost and cost_extend:
                    # Incremental cost: prune before materialising the node.
                    cost_value = cost_at(next_cost, size, None)
                    if cost_value > budget:
                        pruned += 1
                        continue
                    extended_set = item_set | {item}
                    # The DFS extends in sorted-item order, so the node's item
                    # tuple *is* its sorted_items — pre-seed the cache.
                    package = Package.trusted(schema, extended_set, extended)
                else:
                    extended_set = item_set | {item}
                    package = Package.trusted(schema, extended_set, extended)
                    cost_value = cost_at(next_cost, size, package) if monotone_cost else None
                    if monotone_cost and cost_value > budget:
                        pruned += 1
                        continue
                compatible: Optional[bool] = None
                if antimonotone:
                    compatible = oracle.is_satisfied(package)
                    if not compatible:
                        pruned += 1
                        continue
                next_val = val_extend(val_state, item) if val_extend else None
                if package not in excluded:
                    if compatible is None:
                        compatible = oracle.is_satisfied(package)
                    if compatible:
                        if cost_value is None:
                            cost_value = cost_at(next_cost, size, package)
                        if cost_value <= budget:
                            if check_rating:
                                rating = val_at(next_val, size, package)
                                ok = rating > rating_bound if strict else rating >= rating_bound
                            else:
                                ok = True
                            if ok:
                                yield package
                if size < limit:
                    yield from dfs(index + 1, extended, extended_set, next_cost, next_val)

        try:
            yield from dfs(0, (), frozenset(), cost_init, val_init)
        finally:
            active = _metrics._ACTIVE
            if active is not None:
                active.inc_many(
                    (("engine.nodes.examined", examined), ("engine.nodes.pruned", pruned))
                )

    def first_valid(
        self,
        rating_bound: Optional[float] = None,
        strict: bool = False,
        exclude: Iterable[Package] = (),
    ) -> Optional[Package]:
        """The first valid package the DFS reaches, or ``None``."""
        for package in self.iter_valid(rating_bound=rating_bound, strict=strict, exclude=exclude):
            return package
        return None

    # -- counting (non-materializing) ------------------------------------------
    def count_valid(
        self,
        rating_bound: Optional[float] = None,
        strict: bool = False,
        max_candidates: Optional[int] = None,
        stop_at: Optional[int] = None,
        by_size: bool = False,
        collect_ratings: Optional[List[float]] = None,
    ):
        """``|{N valid : val(N) ≥ B}|`` without materialising the packages.

        The counting scan shares the DFS of :meth:`iter_valid` but never
        yields: no generator frames, no exclusion set, and no package objects
        retained beyond the oracle probe of the current node.  ``stop_at``
        short-circuits the scan once that many valid packages are seen (the
        MBP witnesses check needs only "are there k?"); ``by_size`` also
        returns the per-size histogram CPP reports; ``collect_ratings``
        (a caller-supplied list) additionally receives every counted
        package's rating — the MBP maximum-bound scan needs the ratings but
        still no packages.
        """
        items, limit = self.items, self.limit
        histogram: Dict[int, int] = {}
        count = 0
        if limit <= 0 or (stop_at is not None and stop_at <= 0):
            return (count, histogram) if by_size else count
        schema, oracle, budget = self.schema, self.oracle, self.budget
        monotone_cost, antimonotone = self.monotone_cost, self.antimonotone
        check_rating = rating_bound is not None
        need_rating = check_rating or collect_ratings is not None
        cost_init, cost_extend, cost_at = self._cost_path()
        val_init, val_extend, val_at = self._val_path()
        if not need_rating:  # the rating never gets consulted: skip threading it
            val_init, val_extend = None, None
        examined = 0
        pruned = 0
        deadline = current_deadline()  # call-time, as in iter_valid
        if deadline is not None:
            deadline.check()

        def dfs(start, prefix, item_set, cost_state, val_state) -> None:
            nonlocal examined, pruned, count
            for index in range(start, len(items)):
                item = items[index]
                extended = prefix + (item,)
                examined += 1
                if max_candidates is not None and examined > max_candidates:
                    raise BudgetExceededError(
                        f"valid-package enumeration exceeded {max_candidates} candidates"
                    )
                if deadline is not None and not examined & (_DEADLINE_STRIDE - 1):
                    deadline.tick(_DEADLINE_STRIDE)
                size = len(extended)
                next_cost = cost_extend(cost_state, item) if cost_extend else None
                if monotone_cost and cost_extend:
                    # Incremental cost: prune before materialising the node.
                    cost_value = cost_at(next_cost, size, None)
                    if cost_value > budget:
                        pruned += 1
                        continue
                    extended_set = item_set | {item}
                    package = Package.trusted(schema, extended_set, extended)
                else:
                    extended_set = item_set | {item}
                    package = Package.trusted(schema, extended_set, extended)
                    cost_value = cost_at(next_cost, size, package) if monotone_cost else None
                    if monotone_cost and cost_value > budget:
                        pruned += 1
                        continue
                compatible = oracle.is_satisfied(package)
                if antimonotone and not compatible:
                    pruned += 1
                    continue
                next_val = val_extend(val_state, item) if val_extend else None
                if compatible:
                    if cost_value is None:
                        cost_value = cost_at(next_cost, size, package)
                    if cost_value <= budget:
                        if need_rating:
                            rating = val_at(next_val, size, package)
                            if not check_rating:
                                ok = True
                            elif strict:
                                ok = rating > rating_bound
                            else:
                                ok = rating >= rating_bound
                        else:
                            ok = True
                        if ok:
                            count += 1
                            if by_size:
                                histogram[size] = histogram.get(size, 0) + 1
                            if collect_ratings is not None:
                                collect_ratings.append(rating)
                            if stop_at is not None and count >= stop_at:
                                raise _SearchDone
                if size < limit:
                    dfs(index + 1, extended, extended_set, next_cost, next_val)

        try:
            dfs(0, (), frozenset(), cost_init, val_init)
        except _SearchDone:
            pass
        finally:
            active = _metrics._ACTIVE
            if active is not None:
                active.inc_many(
                    (("engine.nodes.examined", examined), ("engine.nodes.pruned", pruned))
                )
        return (count, histogram) if by_size else count

    def valid_ratings(self) -> List[float]:
        """Ratings of every valid package, without retaining the packages."""
        ratings: List[float] = []
        self.count_valid(collect_ratings=ratings)
        return ratings

    # -- branch-and-bound top-k -------------------------------------------------
    def best_valid(
        self,
        how_many: int,
        max_candidates: Optional[int] = None,
    ) -> Tuple[List[Tuple[float, Package]], int, int]:
        """The ``how_many`` best (rating, package) pairs, plus search counters.

        Ties are broken by :meth:`Package.sort_key` — exactly the order the
        exhaustive sort uses — so the result is bit-identical whether or not
        branch-and-bound pruning fires.  Returns ``(scored, examined, total)``
        where ``total`` is the number of valid packages *seen* (with pruning
        active this undercounts the lattice total only once the selection is
        already full, so ``total >= how_many`` iff a full selection exists).

        The branch-and-bound mode engages when the problem declares
        ``monotone_val``: the best rating reachable in a subtree is bounded by
        the node's rating plus the positive per-item gains of the items still
        ahead (exact for additive ratings via
        :meth:`~repro.core.functions.PackageRating.item_gain`) or, lacking
        gains, by the rating of the node united with every remaining item —
        admissible because ``val`` is declared monotone.  Subtrees whose bound
        falls strictly below the current k-th best rating cannot contribute:
        a tying package could still lose on the tie key only to a package
        *already* in the selection, so strict comparison preserves exact
        tie-breaking.
        """
        items, limit = self.items, self.limit
        scored: List[Tuple[Tuple[float, Tuple], Package, float]] = []
        if limit <= 0 or how_many <= 0:
            return [], 0, 0
        schema, oracle, budget = self.schema, self.oracle, self.budget
        monotone_cost, antimonotone = self.monotone_cost, self.antimonotone
        cost_init, cost_extend, cost_at = self._cost_path()
        val_init, val_extend, val_at = self._val_path()

        use_bound = self.problem.monotone_val
        gains = self.problem.val.item_gain(self.schema) if use_bound else None
        cost_delta = self.problem.cost.item_delta(self.schema) if gains is not None else None
        if gains is not None:
            # suffix_top[i][m] = sum of the m largest positive gains among
            # items[i:] — an admissible bound on the extra rating any
            # ≤ m-item subset of them can add.  One backward pass maintains
            # the descending gain list by insertion (each gain evaluated
            # once), re-deriving the prefix sums per index.  ``bound_from``
            # only ever asks for m ≤ limit more items (the size bound caps
            # every extension), so both the maintained list and the stored
            # prefix sums are truncated there, keeping setup O(n·limit)
            # instead of O(n²).
            count = len(items)
            suffix_top: List[List[float]] = [[0.0]] * (count + 1)
            descending: List[float] = []
            for i in range(count - 1, -1, -1):
                gain = max(0.0, gains(items[i]))
                insort(descending, -gain)  # negated: insort keeps ascending order
                del descending[limit:]  # only the top ``limit`` gains can ever be used
                sums = [0.0]
                for negated in descending:
                    sums.append(sums[-1] - negated)
                suffix_top[i] = sums
            if cost_delta is not None and not math.isfinite(budget):
                # An unbounded budget affords any number of items; the cap
                # would divide infinities (inf // inf is nan).
                cost_delta = None
            if cost_delta is not None:
                # min_delta[i] = the cheapest item still ahead; with an exact
                # additive cost the remaining budget can afford at most
                # ⌊remaining / min_delta⌋ more items, capping m further.
                min_delta: Optional[List[float]] = [0.0] * (count + 1)
                running = float("inf")
                min_delta[count] = running
                for i in range(count - 1, -1, -1):
                    delta = cost_delta(items[i])
                    running = delta if delta < running else running
                    min_delta[i] = running
                if any(d <= 0 for d in min_delta[:count]):
                    # A non-positive item cost defeats the affordability cap.
                    cost_delta, min_delta = None, None
            else:
                min_delta = None
            suffix_sets: Optional[List[FrozenSet[Row]]] = None
        elif use_bound:
            # Generic monotone bound: val(node ∪ all remaining items).
            suffix_top = None
            min_delta = None
            suffix_sets = [frozenset()] * (len(items) + 1)
            for i in range(len(items) - 1, -1, -1):
                suffix_sets[i] = suffix_sets[i + 1] | {items[i]}
        else:
            suffix_top = None
            min_delta = None
            suffix_sets = None

        val_fn = self.problem.val
        examined = 0
        pruned = 0
        total_seen = 0
        deadline = current_deadline()  # call-time, as in iter_valid
        if deadline is not None:
            deadline.check()
        # ``scored`` stays sorted by (-rating, tie key); entries carry the
        # rating separately so the pruning threshold needs no negation.
        worst_rating: Optional[float] = None

        def bound_from(
            index: int,
            node_rating: float,
            node_set: FrozenSet[Row],
            path_cost: float,
            slots: int,
        ) -> float:
            """Best rating any package extending the node with items[index:] can reach."""
            if suffix_top is not None:
                available = len(items) - index
                if available <= 0:
                    return node_rating
                m = slots if slots < available else available
                if min_delta is not None:
                    affordable = int((budget - path_cost) // min_delta[index])
                    if affordable < m:
                        m = affordable
                if m <= 0:
                    return node_rating
                return node_rating + suffix_top[index][m]
            remaining = suffix_sets[index]
            if not remaining:
                return node_rating
            return val_fn(Package.trusted(schema, node_set | remaining))

        def admit(rating: float, package: Package) -> None:
            nonlocal worst_rating, total_seen
            total_seen += 1
            if len(scored) >= how_many:
                if rating < worst_rating:
                    return  # strictly worse: the tie key can never matter
                key = (-rating, package.sort_key())
                if key >= scored[-1][0]:
                    return
            else:
                key = (-rating, package.sort_key())
            insort(scored, (key, package, rating))
            if len(scored) > how_many:
                scored.pop()
            if len(scored) >= how_many:
                worst_rating = scored[-1][2]

        def dfs(start, prefix, item_set, cost_state, val_state, node_rating, path_cost) -> None:
            nonlocal examined, pruned
            slots = limit - len(prefix)
            for index in range(start, len(items)):
                if (
                    suffix_top is not None
                    and worst_rating is not None
                    and bound_from(index, node_rating, item_set, path_cost, slots)
                    < _prune_threshold(worst_rating)
                ):
                    # The capped positive-gain bound is non-increasing in
                    # ``index``, so nothing later in this loop can qualify
                    # either.
                    pruned += 1
                    break
                item = items[index]
                extended = prefix + (item,)
                examined += 1
                if max_candidates is not None and examined > max_candidates:
                    raise BudgetExceededError(
                        f"valid-package enumeration exceeded {max_candidates} candidates"
                    )
                if deadline is not None and not examined & (_DEADLINE_STRIDE - 1):
                    deadline.tick(_DEADLINE_STRIDE)
                size = len(extended)
                next_cost = cost_extend(cost_state, item) if cost_extend else None
                if monotone_cost and cost_extend:
                    # Incremental cost: prune before materialising the node.
                    cost_value = cost_at(next_cost, size, None)
                    if cost_value > budget:
                        pruned += 1
                        continue
                    extended_set = item_set | {item}
                    package = Package.trusted(schema, extended_set, extended)
                else:
                    extended_set = item_set | {item}
                    package = Package.trusted(schema, extended_set, extended)
                    cost_value = cost_at(next_cost, size, package) if monotone_cost else None
                    if monotone_cost and cost_value > budget:
                        pruned += 1
                        continue
                compatible = oracle.is_satisfied(package)
                if antimonotone and not compatible:
                    pruned += 1
                    continue
                next_val = val_extend(val_state, item) if val_extend else None
                # The node's rating is needed for admission anyway whenever the
                # node is valid, and for the subtree bound whenever branch and
                # bound is active; only a bound-less search on an invalid node
                # can skip it, which the lazy computation below arranges.
                rating = val_at(next_val, size, package) if use_bound else None
                if compatible:
                    if cost_value is None:
                        cost_value = cost_at(next_cost, size, package)
                    if cost_value <= budget:
                        if rating is None:
                            rating = val_at(next_val, size, package)
                        admit(rating, package)
                if size < limit:
                    child_cost = (
                        path_cost + cost_delta(item) if cost_delta is not None else 0.0
                    )
                    if (
                        use_bound
                        and worst_rating is not None
                        and bound_from(
                            index + 1, rating, extended_set, child_cost, limit - size
                        )
                        < _prune_threshold(worst_rating)
                    ):
                        pruned += 1
                        continue
                    dfs(
                        index + 1,
                        extended,
                        extended_set,
                        next_cost,
                        next_val,
                        rating,
                        child_cost,
                    )

        # Per-item gains are admissible only between non-empty packages (the
        # rating may jump arbitrarily — even from -∞ — between ∅ and the
        # first item), so the root level never prunes through them: seeding
        # the root "rating" with +∞ disables the gains-based break for the
        # top-level loop, and every deeper bound starts from a real node's
        # rating.  The generic monotone bound evaluates val(∅ ∪ remaining)
        # directly and needs no such guard.
        root_rating = math.inf if use_bound else 0.0
        try:
            dfs(0, (), frozenset(), cost_init, val_init, root_rating, 0.0)
        finally:
            active = _metrics._ACTIVE
            if active is not None:
                active.inc_many(
                    (("engine.nodes.examined", examined), ("engine.nodes.pruned", pruned))
                )
        return [(rating, package) for _, package, rating in scored], examined, total_seen


# ---------------------------------------------------------------------------
# Module-level entry points (stable API; every solver goes through these or
# through an engine of its own)
# ---------------------------------------------------------------------------
def enumerate_candidate_packages(
    problem: RecommendationProblem,
    candidate_items: Optional[Relation] = None,
    include_empty: bool = False,
    max_candidates: Optional[int] = None,
) -> Iterator[Package]:
    """All subsets of ``Q(D)`` whose size respects the bound, smallest first.

    This enumeration applies no pruning; it is used by tests and by callers
    that need the raw candidate space.  ``max_candidates`` is a resource guard
    for the benchmark harness; exceeding it raises
    :class:`~repro.relational.errors.BudgetExceededError` so a runaway
    configuration fails loudly instead of silently truncating results.
    """
    answers = candidate_items if candidate_items is not None else problem.candidate_items()
    items: Tuple[Row, ...] = tuple(sorted(answers.rows(), key=row_sort_key))
    schema = problem.query.output_schema()
    limit = min(problem.max_package_size(), len(items))
    produced = 0
    if include_empty:
        yield Package.empty(schema)
        produced += 1
    for size in range(1, limit + 1):
        for subset in combinations(items, size):
            produced += 1
            if max_candidates is not None and produced > max_candidates:
                raise BudgetExceededError(
                    f"candidate-package enumeration exceeded {max_candidates} packages"
                )
            yield Package.trusted(schema, frozenset(subset), subset)


def enumerate_valid_packages(
    problem: RecommendationProblem,
    rating_bound: Optional[float] = None,
    strict: bool = False,
    exclude: Iterable[Package] = (),
    candidate_items: Optional[Relation] = None,
    max_candidates: Optional[int] = None,
) -> Iterator[Package]:
    """All valid packages, optionally rated ≥ (or >) ``rating_bound`` and not excluded."""
    engine = PackageSearchEngine(problem, candidate_items=candidate_items)
    return engine.iter_valid(
        rating_bound=rating_bound,
        strict=strict,
        exclude=exclude,
        max_candidates=max_candidates,
    )


def count_valid_packages(
    problem: RecommendationProblem,
    rating_bound: Optional[float] = None,
    strict: bool = False,
    max_candidates: Optional[int] = None,
) -> int:
    """``|{N valid : val(N) ≥ B}|`` — the raw quantity behind CPP."""
    engine = PackageSearchEngine(problem)
    return engine.count_valid(
        rating_bound=rating_bound, strict=strict, max_candidates=max_candidates
    )


def best_valid_packages(
    problem: RecommendationProblem,
    how_many: int,
    candidate_items: Optional[Relation] = None,
    max_candidates: Optional[int] = None,
) -> Tuple[Package, ...]:
    """The ``how_many`` highest-rated valid packages (ties broken deterministically)."""
    engine = PackageSearchEngine(problem, candidate_items=candidate_items)
    scored, _, _ = engine.best_valid(how_many, max_candidates=max_candidates)
    return tuple(package for _, package in scored)


def exists_valid_package(
    problem: RecommendationProblem,
    rating_bound: Optional[float] = None,
    strict: bool = False,
    exclude: Iterable[Package] = (),
    candidate_items: Optional[Relation] = None,
) -> Optional[Package]:
    """A witness valid package meeting the rating condition, or ``None``.

    This is the deterministic realisation of the paper's EXISTPACK≥ oracle;
    because the implementation is a search rather than a nondeterministic
    guess, it can return the witness itself, which the FRP solver exploits.
    """
    engine = PackageSearchEngine(problem, candidate_items=candidate_items)
    return engine.first_valid(rating_bound=rating_bound, strict=strict, exclude=exclude)


def find_k_witnesses(
    problem: RecommendationProblem,
    rating_bound: float,
    candidate_items: Optional[Relation] = None,
) -> Optional[Selection]:
    """``k`` distinct valid packages rated ≥ ``rating_bound``, or ``None``.

    The witness check shared by the QRPP and ARPP searches (each candidate
    relaxation/adjustment asks exactly this question).  ``candidate_items``
    may be passed to reuse an already-known — e.g. incrementally maintained —
    ``Q(D)`` instead of re-evaluating the selection query.
    """
    engine = PackageSearchEngine(problem, candidate_items=candidate_items)
    packages: List[Package] = []
    for package in engine.iter_valid(rating_bound=rating_bound):
        packages.append(package)
        if len(packages) >= problem.k:
            return Selection(packages)
    return None


# ---------------------------------------------------------------------------
# The pre-engine reference search (the historical implementation, retained —
# like ``enumerate_bindings_naive`` — as the semantic baseline the
# differential suite and the enumeration benchmark compare against)
# ---------------------------------------------------------------------------
def _prunable_reference(problem: RecommendationProblem, package: Package) -> bool:
    """The historical per-node pruning check (recomputes cost from scratch)."""
    if problem.monotone_cost and problem.cost(package) > problem.budget:
        return True
    if problem.antimonotone_compatibility and not problem.compatibility_oracle().is_satisfied(
        package
    ):
        return True
    return False


def enumerate_valid_packages_reference(
    problem: RecommendationProblem,
    rating_bound: Optional[float] = None,
    strict: bool = False,
    exclude: Iterable[Package] = (),
    candidate_items: Optional[Relation] = None,
    max_candidates: Optional[int] = None,
) -> Iterator[Package]:
    """The historical recursive enumerator, pre-engine node-by-node semantics.

    Every node pays a validating :class:`Package` construction, a from-scratch
    ``cost``/``val`` evaluation, a second compatibility probe inside
    ``is_valid_package`` and the ``N ⊆ Q(D)`` membership scan.  Items follow
    the same typed :func:`~repro.relational.ordering.row_sort_key` order as
    the engine, so the differential suite compares the two traversals
    node-for-node without repr-collision ambiguity.
    """
    answers = candidate_items if candidate_items is not None else problem.candidate_items()
    items: Tuple[Row, ...] = tuple(sorted(answers.rows(), key=row_sort_key))
    schema = problem.query.output_schema()
    limit = min(problem.max_package_size(), len(items))
    excluded: FrozenSet[Package] = frozenset(exclude)
    examined = 0

    def dfs(start: int, current: Tuple[Row, ...]) -> Iterator[Package]:
        nonlocal examined
        for index in range(start, len(items)):
            extended = current + (items[index],)
            examined += 1
            if max_candidates is not None and examined > max_candidates:
                raise BudgetExceededError(
                    f"valid-package enumeration exceeded {max_candidates} candidates"
                )
            package = Package(schema, extended)
            if _prunable_reference(problem, package):
                continue
            if package not in excluded and problem.is_valid_package(
                package, rating_bound=rating_bound, candidate_items=answers, strict=strict
            ):
                yield package
            if len(extended) < limit:
                yield from dfs(index + 1, extended)

    yield from dfs(0, ())


def best_valid_packages_reference(
    problem: RecommendationProblem,
    how_many: int,
    candidate_items: Optional[Relation] = None,
    max_candidates: Optional[int] = None,
) -> Tuple[Package, ...]:
    """Exhaustive top-k over the reference enumerator (pre-engine semantics).

    Uses the same ``(-rating, package.sort_key())`` order as the engine's
    branch-and-bound mode, so the two must agree package-for-package — ties
    included — on every problem; the differential suite asserts exactly that.
    """
    answers = candidate_items if candidate_items is not None else problem.candidate_items()
    scored = [
        (problem.val(package), package)
        for package in enumerate_valid_packages_reference(
            problem, candidate_items=answers, max_candidates=max_candidates
        )
    ]
    scored.sort(key=lambda pair: (-pair[0], pair[1].sort_key()))
    return tuple(package for _, package in scored[:how_many])
