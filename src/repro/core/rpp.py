"""RPP — the recommendation (decision) problem for packages.

Given a candidate set ``N = {N1, ..., Nk}``, decide whether it is a top-k
package selection for ``(Q, D, Qc, cost, val, C)``: every ``Ni`` must be a
valid package, the packages must be pairwise distinct, and no valid package
outside ``N`` may be rated strictly higher than any package inside it
(equivalently, higher than the minimum rating of ``N``).

The implementation mirrors the paper's upper-bound algorithm (Theorem 4.1):
first a validity phase, then a search for a dominating outsider.  The result
object records which phase failed and, when applicable, a counterexample
package, which the tests use to cross-check the reductions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Tuple

from repro.core.enumeration import PackageSearchEngine
from repro.core.model import RecommendationProblem
from repro.core.packages import Package, Selection
from repro.relational.errors import ModelError


@dataclass(frozen=True)
class RPPResult:
    """Outcome of an RPP check."""

    is_top_k: bool
    reason: str
    counterexample: Optional[Package] = None
    invalid_package: Optional[Package] = None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_top_k


def _as_selection(candidate: "Selection | Iterable[Package]") -> Selection:
    if isinstance(candidate, Selection):
        return candidate
    return Selection(candidate)


def is_top_k_selection(
    problem: RecommendationProblem,
    candidate: "Selection | Iterable[Package]",
) -> RPPResult:
    """Decide RPP for a candidate selection.

    Follows the two-phase structure of the paper's algorithm:

    1. *Validity*: ``|N| = k``, packages pairwise distinct, each package valid
       (subset of ``Q(D)``, compatible, within budget and size bound).
    2. *Optimality*: no valid package outside ``N`` has a rating strictly above
       the minimum rating of ``N``.
    """
    selection = _as_selection(candidate)
    if len(selection) != problem.k:
        return RPPResult(False, f"selection has {len(selection)} packages, expected k = {problem.k}")
    if not selection.distinct():
        return RPPResult(False, "packages are not pairwise distinct")

    candidate_items = problem.candidate_items()
    # The candidate packages come from the caller, not from ``Q(D)``: validity
    # must include the full membership scan, so it stays on the problem's
    # untrusted checker rather than the engine's fast path.
    for package in selection:
        if not problem.is_valid_package(package, candidate_items=candidate_items):
            report = problem.validity_report(package)
            failed = ", ".join(name for name, ok in report.items() if not ok)
            return RPPResult(
                False,
                f"package {package.sorted_items()} is not valid ({failed})",
                invalid_package=package,
            )

    threshold = problem.min_rating(selection)
    chosen = selection.as_set()
    engine = PackageSearchEngine(problem, candidate_items=candidate_items)
    # The rating condition is pushed into the engine (threaded incrementally
    # along the DFS); the first package it yields is exactly the first
    # dominating outsider the historical scan-then-test loop found.
    outsider = engine.first_valid(rating_bound=threshold, strict=True, exclude=chosen)
    if outsider is not None:
        return RPPResult(
            False,
            "a valid package outside the selection has a higher rating "
            f"({problem.val(outsider)} > {threshold})",
            counterexample=outsider,
        )
    return RPPResult(True, "selection is a top-k package selection")


def selection_from_items(
    problem: RecommendationProblem, packages_items: Sequence[Sequence[Sequence]]
) -> Selection:
    """Build a :class:`Selection` from raw item tuples (one list per package)."""
    return Selection(problem.package_from_items(items) for items in packages_items)
