"""Special cases of POI recommendations (Section 6 of the paper).

Three restrictions are studied there:

* packages bounded by a **constant** ``Bp`` instead of a polynomial
  (Corollary 6.1) — the data complexity of RPP/FRP/MBP/CPP drops to
  PTIME/FP because only polynomially many candidate packages exist;
* **SP queries** (Corollary 6.2) — a language with PTIME combined membership;
  variable package sizes are then the only remaining source of hardness;
* **PTIME compatibility constraints** (Corollary 6.3) — behave exactly like
  the absence of ``Qc``.

The helpers here construct the restricted problems and expose the polynomial
fast paths explicitly, so the ablation benchmark can time "generic solver on
restricted problem" against the paper's predicted regime.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.compatibility import PredicateConstraint
from repro.core.cpp import CPPResult, count_valid_packages
from repro.core.enumeration import enumerate_valid_packages
from repro.core.frp import FRPResult, compute_top_k
from repro.core.mbp import MBPResult, is_maximum_bound, maximum_bound
from repro.core.model import ConstantBound, RecommendationProblem
from repro.core.packages import Package, Selection
from repro.core.rpp import RPPResult, is_top_k_selection
from repro.queries.languages import QueryLanguage
from repro.relational.errors import ModelError


@dataclass(frozen=True)
class ComplexityRegime:
    """A coarse description of how hard a problem instance is expected to be.

    ``polynomial_data`` means the enumeration underlying the generic solvers
    touches at most polynomially many candidate packages for a *fixed* query:
    the constant-bound and item cases of Tables 8.2.
    """

    language: QueryLanguage
    has_compatibility: bool
    constant_bound: bool
    polynomial_data: bool

    def describe(self) -> str:
        size = "constant-size packages" if self.constant_bound else "poly-size packages"
        qc = "with Qc" if self.has_compatibility else "without Qc"
        regime = "PTIME data complexity" if self.polynomial_data else "exponential search in |Q(D)|"
        return f"LQ = {self.language.value}, {qc}, {size}: {regime}"


def classify_regime(problem: RecommendationProblem) -> ComplexityRegime:
    """Which of the paper's regimes a concrete problem instance falls into."""
    constant = problem.size_bound.is_constant()
    return ComplexityRegime(
        language=problem.language(),
        has_compatibility=problem.has_compatibility_constraint(),
        constant_bound=constant,
        polynomial_data=constant,
    )


def restrict_to_constant_bound(problem: RecommendationProblem, limit: int) -> RecommendationProblem:
    """Corollary 6.1: the same instance with packages of at most ``limit`` items."""
    if limit < 1:
        raise ModelError("the constant package bound must be at least 1")
    return problem.with_constant_bound(limit)


def restrict_to_ptime_compatibility(
    problem: RecommendationProblem, predicate: Callable[[Package, object], bool], description: str
) -> RecommendationProblem:
    """Corollary 6.3: replace a query constraint by a PTIME predicate."""
    from dataclasses import replace

    return replace(problem, compatibility=PredicateConstraint(predicate, description))


# ---------------------------------------------------------------------------
# Polynomial fast paths for the constant-bound regime (Corollary 6.1)
# ---------------------------------------------------------------------------
def _require_constant_bound(problem: RecommendationProblem, function_name: str) -> None:
    if not problem.size_bound.is_constant():
        raise ModelError(
            f"{function_name} implements the Corollary 6.1 fast path and requires a "
            "constant package-size bound; call restrict_to_constant_bound first"
        )


def rpp_constant_bound(problem: RecommendationProblem, candidate: Selection) -> RPPResult:
    """RPP under a constant bound — PTIME in the data for a fixed query."""
    _require_constant_bound(problem, "rpp_constant_bound")
    return is_top_k_selection(problem, candidate)


def frp_constant_bound(problem: RecommendationProblem) -> FRPResult:
    """FRP under a constant bound — FP in the data for a fixed query."""
    _require_constant_bound(problem, "frp_constant_bound")
    return compute_top_k(problem)


def mbp_constant_bound(problem: RecommendationProblem, bound: float) -> MBPResult:
    """MBP under a constant bound — PTIME in the data for a fixed query."""
    _require_constant_bound(problem, "mbp_constant_bound")
    return is_maximum_bound(problem, bound)


def cpp_constant_bound(problem: RecommendationProblem, bound: float) -> CPPResult:
    """CPP under a constant bound — FP in the data for a fixed query."""
    _require_constant_bound(problem, "cpp_constant_bound")
    return count_valid_packages(problem, bound)


def candidate_space_size(problem: RecommendationProblem) -> int:
    """The number of candidate packages the generic solvers may have to examine.

    ``Σ_{s=1..bound} C(|Q(D)|, s)`` — the quantity whose growth separates the
    constant-bound (polynomial) and poly-bound (exponential) columns of
    Table 8.2.  Benchmarks report it next to wall-clock numbers.
    """
    pool = len(problem.candidate_items())
    bound = min(problem.max_package_size(), pool)
    return sum(math.comb(pool, size) for size in range(1, bound + 1))
