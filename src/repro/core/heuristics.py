"""Practical heuristics and tractable special cases (Section 9 of the paper).

The paper's concluding section points out that "the recommendation problems
are mostly intractable" and that "an interesting topic is to identify
practical and tractable cases".  This module provides the two halves of that
programme within our reproduction:

* **Tractable-case detection** — :func:`detect_tractable_case` recognises the
  regimes the paper itself proves polynomial (constant package bounds,
  Corollary 6.1; the item embedding, Theorem 6.4) and
  :func:`solve_if_tractable` dispatches to the corresponding exact polynomial
  solver.  Everything else falls back to the exhaustive solver, so the
  dispatcher is always exact.

* **Heuristic solvers for the hard regime** — :func:`greedy_top_k` and
  :func:`beam_search_top_k` construct packages incrementally, trading the
  exponential candidate enumeration of the exact solvers for polynomially many
  package extensions.  They are *heuristics*: every package they return is
  valid (validity is always checked exactly), but their ratings may be below
  the optimum.  :func:`approximation_quality` quantifies exactly that gap
  against the exact solver, which is what the ablation benchmark reports.

The greedy construction is the classic marginal-gain rule: starting from the
empty package, repeatedly add the item with the best rating improvement that
keeps the package valid.  For additive ratings with monotone costs (the
travel, course and team workloads) it is the natural budgeted-maximisation
heuristic; for adversarial ratings it can be arbitrarily bad, which is the
point the comparison makes.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.enumeration import PackageSearchEngine
from repro.core.frp import FRPResult, compute_top_k
from repro.core.model import RecommendationProblem
from repro.core.packages import Package, Selection
from repro.core.special_cases import frp_constant_bound
from repro.relational.database import Row
from repro.relational.errors import ModelError
from repro.relational.ordering import row_sort_key


# ---------------------------------------------------------------------------
# Tractable-case detection (the paper's polynomial regimes)
# ---------------------------------------------------------------------------
class TractableCase(Enum):
    """The polynomial-time regimes identified by the paper (data complexity)."""

    #: Packages bounded by a constant — Corollary 6.1: PTIME / FP.
    CONSTANT_BOUND = "constant package bound (Corollary 6.1)"
    #: Singleton packages, i.e. the item-recommendation embedding — Theorem 6.4.
    ITEM_EMBEDDING = "item recommendation (Theorem 6.4)"

    def describe(self) -> str:
        return self.value


def detect_tractable_case(problem: RecommendationProblem) -> Optional[TractableCase]:
    """Which polynomial regime, if any, a problem instance falls into.

    The detection is purely structural (it never evaluates the query): a
    constant size bound puts the instance in the Corollary 6.1 regime; a
    constant bound of exactly one without compatibility constraints is the
    item embedding of Section 2.
    """
    if not problem.size_bound.is_constant():
        return None
    if problem.size_bound.max_size(problem.database.size()) == 1 and not (
        problem.has_compatibility_constraint()
    ):
        return TractableCase.ITEM_EMBEDDING
    return TractableCase.CONSTANT_BOUND


def solve_if_tractable(problem: RecommendationProblem) -> Tuple[FRPResult, Optional[TractableCase]]:
    """Solve FRP with the polynomial algorithm when one applies, exactly otherwise.

    Returns the result together with the detected case (``None`` when the
    exhaustive solver was used), so callers can report which algorithm ran.
    """
    case = detect_tractable_case(problem)
    if case is not None:
        return frp_constant_bound(problem), case
    return compute_top_k(problem), None


# ---------------------------------------------------------------------------
# Heuristic results
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of a heuristic FRP computation.

    ``extensions_examined`` counts package extensions considered — the
    machine-independent work measure the ablation benchmark reports next to
    the exact solver's candidate count.
    """

    selection: Optional[Selection]
    ratings: Tuple[float, ...] = ()
    extensions_examined: int = 0
    exact: bool = False

    @property
    def found(self) -> bool:
        """Whether k packages were produced."""
        return self.selection is not None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.found


def _package_key(package: Package) -> Tuple[Row, ...]:
    return package.sorted_items()


# ---------------------------------------------------------------------------
# Greedy construction
# ---------------------------------------------------------------------------
def greedy_package(
    problem: RecommendationProblem,
    exclude: Iterable[Package] = (),
    seed_item: Optional[Row] = None,
    _engine: Optional[PackageSearchEngine] = None,
) -> Tuple[Optional[Package], int]:
    """Build one valid package by greedy marginal-gain extension.

    Starting from ``seed_item`` (or the best valid singleton), repeatedly add
    the item that most improves ``val`` while keeping the package valid; stop
    when no extension improves the rating.  Returns the package (or ``None``
    when not even a valid singleton exists outside ``exclude``) and the number
    of extensions examined.
    """
    engine = _engine if _engine is not None else PackageSearchEngine(problem)
    items = engine.items
    excluded: Set[Tuple[Row, ...]] = {_package_key(package) for package in exclude}
    examined = 0

    valid = engine.is_valid_candidate  # items come from Q(D): fast-path validity

    current: Optional[Package] = None
    if seed_item is not None:
        # The seed is caller-supplied, so membership in Q(D) is NOT implied
        # the way it is for engine items: validate it loudly (malformed seeds
        # raise, as the validating Package constructor used to) and probe the
        # answer relation's O(1) membership before trusting the tuple.
        seed = engine.schema.validate_tuple(seed_item)
        seeded = engine.singleton(seed) if seed in engine.answers else None
        examined += 1
        if seeded is not None and valid(seeded) and _package_key(seeded) not in excluded:
            current = seeded
    if current is None:
        best_rating = None
        for item in items:
            candidate = engine.singleton(item)
            examined += 1
            if _package_key(candidate) in excluded or not valid(candidate):
                continue
            rating = problem.val(candidate)
            if best_rating is None or rating > best_rating:
                best_rating, current = rating, candidate
    if current is None:
        return None, examined

    max_size = problem.max_package_size()
    improved = True
    while improved and len(current) < max_size:
        improved = False
        current_rating = problem.val(current)
        best_extension: Optional[Package] = None
        best_rating = current_rating
        for item in items:
            if item in current:
                continue
            candidate = engine.extend(current, item)
            examined += 1
            if _package_key(candidate) in excluded or not valid(candidate):
                continue
            rating = problem.val(candidate)
            if rating > best_rating:
                best_rating, best_extension = rating, candidate
        if best_extension is not None:
            current, improved = best_extension, True
    if _package_key(current) in excluded:
        return None, examined
    return current, examined


def greedy_top_k(problem: RecommendationProblem) -> HeuristicResult:
    """A heuristic top-k selection built from greedy packages.

    One greedy package is grown from every candidate seed item (plus the
    unseeded best-singleton start); the k highest-rated distinct results form
    the selection.  The number of extensions examined is polynomial in
    ``|Q(D)|`` and the package size bound, in contrast to the exponential
    candidate space of the exact solver.
    """
    engine = PackageSearchEngine(problem)
    examined = 0
    found: Dict[Tuple[Row, ...], Package] = {}

    def record(package: Optional[Package]) -> None:
        if package is not None:
            found.setdefault(_package_key(package), package)

    package, work = greedy_package(problem, _engine=engine)
    examined += work
    record(package)
    for item in engine.items:
        package, work = greedy_package(problem, seed_item=item, _engine=engine)
        examined += work
        record(package)

    scored = sorted(
        ((problem.val(package), package) for package in found.values()),
        key=lambda pair: (-pair[0], pair[1].sort_key()),
    )
    if len(scored) < problem.k:
        return HeuristicResult(None, extensions_examined=examined)
    chosen = scored[: problem.k]
    return HeuristicResult(
        Selection(package for _, package in chosen),
        ratings=tuple(rating for rating, _ in chosen),
        extensions_examined=examined,
    )


# ---------------------------------------------------------------------------
# Beam search
# ---------------------------------------------------------------------------
def beam_search_top_k(problem: RecommendationProblem, beam_width: int = 8) -> HeuristicResult:
    """A beam-search heuristic for FRP.

    Level ``ℓ`` of the search holds at most ``beam_width`` packages of size
    ``ℓ`` ordered by rating; every level extends each beam member by one item
    and keeps the best ``beam_width`` valid extensions.  All valid packages
    ever seen compete for the final top-k, so widening the beam monotonically
    improves the result and a beam at least as wide as the candidate space is
    exact.
    """
    if beam_width < 1:
        raise ModelError("beam width must be at least 1")
    engine = PackageSearchEngine(problem)
    items = engine.items
    schema = engine.schema
    max_size = engine.max_size
    examined = 0

    valid = engine.is_valid_candidate  # beam members are built from Q(D) items

    # Beam ranking wants the *highest* (rating, tie) pairs while the final
    # top-k wants ties ascending; reusing the typed sort key with an inverted
    # rating keeps both deterministic and mutually consistent.
    def beam_rank(package: Package) -> Tuple[float, Tuple]:
        return (problem.val(package), package.sort_key())

    seen: Dict[Tuple[Row, ...], float] = {}
    beam: List[Package] = []
    for item in items:
        candidate = engine.singleton(item)
        examined += 1
        if valid(candidate):
            seen[_package_key(candidate)] = problem.val(candidate)
            beam.append(candidate)
    beam = heapq.nlargest(beam_width, beam, key=beam_rank)

    size = 1
    while beam and size < max_size:
        extensions: List[Package] = []
        for package in beam:
            for item in items:
                if item in package:
                    continue
                candidate = engine.extend(package, item)
                key = _package_key(candidate)
                if key in seen:
                    continue
                examined += 1
                if not valid(candidate):
                    continue
                seen[key] = problem.val(candidate)
                extensions.append(candidate)
        beam = heapq.nlargest(beam_width, extensions, key=beam_rank)
        size += 1

    scored = sorted(
        seen.items(), key=lambda pair: (-pair[1], tuple(map(row_sort_key, pair[0])))
    )
    if len(scored) < problem.k:
        return HeuristicResult(None, extensions_examined=examined)
    packages = [
        Package.trusted(schema, frozenset(key), key) for key, _ in scored[: problem.k]
    ]
    ratings = tuple(rating for _, rating in scored[: problem.k])
    return HeuristicResult(Selection(packages), ratings=ratings, extensions_examined=examined)


# ---------------------------------------------------------------------------
# Quality measurement
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ApproximationQuality:
    """How a heuristic selection compares with the exact optimum."""

    heuristic_total: float
    exact_total: float
    ratio: float
    heuristic_found: bool
    exact_found: bool

    def describe(self) -> str:
        if not self.exact_found:
            return "no exact top-k selection exists"
        if not self.heuristic_found:
            return "heuristic found no selection"
        return (
            f"heuristic total {self.heuristic_total:.2f} vs exact {self.exact_total:.2f} "
            f"(ratio {self.ratio:.3f})"
        )


def approximation_quality(
    problem: RecommendationProblem,
    heuristic: HeuristicResult,
    exact: Optional[FRPResult] = None,
) -> ApproximationQuality:
    """Compare a heuristic result against the exact solver on the same problem.

    The comparison uses the total rating of the returned selections; the ratio
    is heuristic / exact, clamped to 1 when both totals are non-positive or
    identical.  When ``exact`` is not supplied the exact solver is run here.
    """
    exact = exact if exact is not None else compute_top_k(problem)
    heuristic_total = sum(heuristic.ratings) if heuristic.found else 0.0
    exact_total = sum(exact.ratings) if exact.found else 0.0
    if not exact.found or not heuristic.found:
        ratio = 0.0
    elif exact_total == heuristic_total:
        ratio = 1.0
    elif exact_total == 0:
        ratio = 1.0 if heuristic_total >= 0 else 0.0
    else:
        ratio = heuristic_total / exact_total
    return ApproximationQuality(
        heuristic_total=heuristic_total,
        exact_total=exact_total,
        ratio=ratio,
        heuristic_found=heuristic.found,
        exact_found=exact.found,
    )
