"""Compatibility constraints on packages.

The paper expresses a compatibility constraint as a query ``Qc`` such that a
package ``N`` satisfies the constraint iff ``Qc(N, D) = ∅``: the query
*detects inconsistencies* among the items of ``N`` (possibly consulting the
database, e.g. a prerequisite relation).  Section 6 additionally considers the
special cases where ``Qc`` is absent and where it is an arbitrary PTIME
predicate (Corollary 6.3).

Three implementations are provided:

* :class:`EmptyConstraint` — the constant empty query; every package satisfies it.
* :class:`QueryConstraint` — a query over the answer relation ``RQ`` and the
  database relations.
* :class:`PredicateConstraint` — a PTIME Python predicate on (package, database).

On top of those, :class:`CompatibilityOracle` memoizes verdicts for one
``(constraint, database)`` pair keyed by package item-set: the enumeration of
valid packages, the pruning hints, the greedy/beam heuristics and the
QRPP/ARPP searches all probe compatibility for overlapping sub-packages many
times, and with ``Qc`` a query every probe is itself a query evaluation.  The
oracle invalidates itself when the database mutates (it compares
:meth:`~repro.relational.database.Database.version` snapshots), so sharing it
across problems over the same database is always safe.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Optional, Tuple

from repro.core.packages import Package
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.queries.base import Query
from repro.relational.database import Database, DatabaseSnapshot, Relation, Row


class CompatibilityConstraint:
    """Base class: decides whether a package's items are mutually compatible."""

    def is_satisfied(self, package: Package, database: Database) -> bool:  # pragma: no cover
        raise NotImplementedError

    def is_empty_constraint(self) -> bool:
        """Whether this is the "absent Qc" case of the paper."""
        return False

    def relation_footprint(self) -> Optional[FrozenSet[str]]:
        """Database relations a verdict may depend on; ``None`` = unknown.

        A verdict is a deterministic function of the package and of the rows
        of the relations in this footprint.  The
        :class:`CompatibilityOracle` uses it on a database delta to *retain*
        every cached verdict when no footprint relation changed, instead of
        clearing wholesale — the delta-maintenance subsystem's ARPP sweeps
        depend on that.  ``None`` (the conservative default) means "could
        touch anything": any mutation clears the cache.  An implementation
        must only return a non-``None`` set when the guarantee genuinely
        holds.
        """
        return None

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class EmptyConstraint(CompatibilityConstraint):
    """The empty query: returns ∅ on any input, so every package is compatible."""

    def is_satisfied(self, package: Package, database: Database) -> bool:
        return True

    def is_empty_constraint(self) -> bool:
        return True

    def relation_footprint(self) -> Optional[FrozenSet[str]]:
        return frozenset()

    def describe(self) -> str:
        return "Qc absent (empty query)"


@dataclass
class QueryConstraint(CompatibilityConstraint):
    """``Qc(N, D) = ∅`` with ``Qc`` a query mentioning ``RQ`` and the database.

    The candidate package is materialised as a relation whose name is the
    answer-relation name of ``Qc`` (``RQ`` by default, or the name of the
    relation the constraint's atoms actually reference).

    Probing is zero-copy: the constraint keeps one reusable *extended
    database* per base database — the base :class:`Relation` objects shared
    by reference plus a single mutable answer relation — and every probe
    merely swaps that relation's rows in place via
    :meth:`~repro.relational.database.Relation.replace_rows`.  The in-place
    swap bumps the relation's version counter like any mutation, so the
    evaluator's hash indexes on the answer relation can never go stale, while
    the indexes on the base relations survive across probes.  The historical
    probe (materialise a fresh relation, copy the database) is retained as
    :meth:`is_satisfied_copying` for the differential suite and the
    enumeration benchmark's pre-engine baseline.

    The in-place swap makes the constraint object single-threaded.  The
    *overlay* probe is the shared-nothing alternative (PR 6): the package is
    materialised as a per-call relation passed to the query's
    ``extra_relations`` overlay, so nothing on the constraint or the database
    mutates and any number of reader threads may probe one constraint
    concurrently.  ``use_snapshot_overlay`` selects the path — ``None`` (the
    default) probes via the overlay exactly when ``database`` is a pinned
    :class:`~repro.relational.database.DatabaseSnapshot` (the serving read
    path), keeping the mutating fast path for the single-user solvers;
    ``True``/``False`` force one path, which the differential coverage uses
    to pin both agree verdict-for-verdict.  A query class whose ``evaluate``
    does not take ``extra_relations`` falls back to the copying reference.
    """

    query: Query
    answer_relation: str = "RQ"
    use_snapshot_overlay: Optional[bool] = field(default=None, compare=False)

    def is_satisfied(self, package: Package, database: Database) -> bool:
        overlay = self.use_snapshot_overlay
        if overlay is None:
            overlay = isinstance(database, DatabaseSnapshot)
        if overlay:
            return self._is_satisfied_overlay(package, database)
        extended, answer = self._extended_view(package, database)
        try:
            return len(self.query.evaluate(extended)) == 0
        finally:
            # Restore the reusable view no matter how the probe ends: a
            # mid-probe exception (a step-limit abort, a ``TypeError`` from a
            # mixed-type comparison) must not leave the shared answer relation
            # holding this package's rows — the next consumer of the view
            # would silently evaluate against a stale package.
            answer.replace_rows(())

    def _is_satisfied_overlay(self, package: Package, database: Database) -> bool:
        """The thread-safe probe: a per-call answer relation overlays by name.

        Builds a fresh relation holding the package and passes it through the
        evaluator's ``extra_relations`` parameter, which shadows ``database``'s
        relations by name without copying or mutating anything — the snapshot
        counterpart of the ``replace_rows`` swap.  Verdict-identical to both
        other probes; the compatibility-oracle tests pin the equivalence.
        """
        if not self._query_accepts_extra_relations():
            return self.is_satisfied_copying(package, database)
        answer = package.as_relation(self.answer_relation)
        result = self.query.evaluate(
            database, extra_relations={self.answer_relation: answer}
        )
        return len(result) == 0

    def _query_accepts_extra_relations(self) -> bool:
        """Whether ``query.evaluate`` takes the ``extra_relations`` overlay.

        Every shipped query class does; a user subclass implementing only the
        base ``evaluate(database)`` signature gets the copying fallback.
        """
        cached = getattr(self, "_overlay_supported", None)
        if cached is None:
            try:
                parameters = inspect.signature(self.query.evaluate).parameters
            except (TypeError, ValueError):  # pragma: no cover - exotic callables
                cached = False
            else:
                cached = "extra_relations" in parameters
            self._overlay_supported = cached
        return cached

    def is_satisfied_copying(self, package: Package, database: Database) -> bool:
        """The historical per-probe copy path, kept as the reference semantics."""
        package_relation = package.as_relation(self.answer_relation)
        extended = database.with_relation(package_relation)
        return len(self.query.evaluate(extended)) == 0

    def _extended_view(
        self, package: Package, database: Database
    ) -> Tuple[Database, Relation]:
        """The reusable extended database with the package's items as ``RQ``.

        Returns the extended database *and* the answer relation so the caller
        can restore the view (``replace_rows(())``) when the probe finishes.
        """
        state = getattr(self, "_probe_state", None)
        if (
            state is None
            or state[0] is not database
            or state[1].schema.attribute_names != package.schema.attribute_names
            or state[3] != database.relation_names()
            # The version component catches a copy-on-write commit: the swap
            # replaces relation *objects* under unchanged names, so a view
            # built before it would keep probing the frozen pre-commit
            # relations.  (The clone preserves the version counter, so an
            # unchanged version genuinely means unchanged objects and rows.)
            or state[4] != database.version()
        ):
            answer = Relation(package.schema.rename(self.answer_relation))
            state = (
                database,
                answer,
                database.with_relation(answer),
                database.relation_names(),
                database.version(),
            )
            self._probe_state = state
        answer = state[1]
        answer.replace_rows(package.items)
        return state[2], answer

    def relation_footprint(self) -> Optional[FrozenSet[str]]:
        """The query's relations minus the answer relation ``RQ``.

        ``RQ`` holds the candidate package, which is part of the cache key,
        not of the database — a verdict depends on the database only through
        the base relations ``Qc`` actually reads.  That reasoning only holds
        for query classes declaring
        :attr:`~repro.queries.base.Query.active_domain_independent`: an FO
        ``Qc`` quantifies over the whole active domain, so a delta to *any*
        relation can flip its verdicts and the footprint must stay unknown.
        """
        if not getattr(self.query, "active_domain_independent", False):
            return None
        return frozenset(self.query.relations_used()) - {self.answer_relation}

    def describe(self) -> str:
        name = getattr(self.query, "name", "Qc")
        return f"Qc = {name} over {self.answer_relation} (satisfied iff empty)"


@dataclass
class ConjunctionConstraint(CompatibilityConstraint):
    """The conjunction of several compatibility constraints.

    A package is compatible iff it satisfies every part.  The paper folds all
    conditions into one query ``Qc``; in code it is often clearer to state
    "items share the same flight" and "at most two museums" separately and
    conjoin them.  The conjunction is anti-monotone whenever every part is.
    """

    parts: tuple

    def __init__(self, *parts: CompatibilityConstraint) -> None:
        self.parts = tuple(parts)

    def is_satisfied(self, package: Package, database: Database) -> bool:
        return all(part.is_satisfied(package, database) for part in self.parts)

    def is_empty_constraint(self) -> bool:
        return all(part.is_empty_constraint() for part in self.parts)

    def relation_footprint(self) -> Optional[FrozenSet[str]]:
        footprint: FrozenSet[str] = frozenset()
        for part in self.parts:
            part_footprint = part.relation_footprint()
            if part_footprint is None:
                return None
            footprint |= part_footprint
        return footprint

    def describe(self) -> str:
        return " AND ".join(part.describe() for part in self.parts) or "Qc absent"


@dataclass
class PredicateConstraint(CompatibilityConstraint):
    """An arbitrary PTIME predicate ``compatible(N, D)`` (Corollary 6.3).

    ``relations`` is an optional declaration of which database relations the
    predicate may read — ``()`` for package-only predicates (the common case:
    "at most two museums" never opens ``D``), a tuple of names for predicates
    consulting specific relations, ``None`` (default) when unknown.  Like the
    problem-level pruning hints, it is a promise by the author: it feeds the
    oracle's delta-retention logic and must not name fewer relations than the
    predicate actually touches.
    """

    predicate: Callable[[Package, Database], bool]
    description: str = "PTIME compatibility predicate"
    relations: Optional[Tuple[str, ...]] = None

    def is_satisfied(self, package: Package, database: Database) -> bool:
        return bool(self.predicate(package, database))

    def relation_footprint(self) -> Optional[FrozenSet[str]]:
        return None if self.relations is None else frozenset(self.relations)

    def describe(self) -> str:
        return self.description


class CompatibilityOracle:
    """Memoized compatibility verdicts for one ``(constraint, database)`` pair.

    Verdicts are keyed by the package's item-set (plus its answer-schema
    attribute names, which constraints may address): two packages with the same
    items always receive the same verdict, so the second probe is a dictionary
    hit instead of a constraint evaluation.  ``hits``/``misses`` account for
    cache effectiveness; the evaluator benchmark and the oracle tests read
    them.

    The oracle snapshots the database's version on creation and re-checks it
    on every probe.  Invalidation is *footprint-aware*: the constraint
    declares which relations its verdicts may depend on
    (:meth:`CompatibilityConstraint.relation_footprint`), and a mutation is
    compared per relation against the snapshot — when every changed relation
    lies outside the footprint, the cached verdicts are provably still
    correct and are **retained** (the ``retentions`` counter accounts for
    those events); otherwise the cache clears as before (``invalidations``).
    A constraint with an unknown footprint (``None``) always clears, so stale
    verdicts can never be served.  With ``enabled=False`` the oracle degrades
    to a transparent pass-through (no caching, no accounting), which the tests
    use to show cached and uncached runs are byte-identical.
    """

    __slots__ = (
        "constraint",
        "database",
        "enabled",
        "hits",
        "misses",
        "invalidations",
        "retentions",
        "_cache",
        "_database_version",
        "_footprint",
        "_always_true",
    )

    def __init__(
        self,
        constraint: CompatibilityConstraint,
        database: Database,
        enabled: bool = True,
    ) -> None:
        self.constraint = constraint
        self.database = database
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.retentions = 0
        self._cache: Dict[Tuple[Tuple[str, ...], FrozenSet[Row]], bool] = {}
        self._database_version = database.version()
        self._footprint = constraint.relation_footprint()
        # The absent-Qc case is constant-true; caching one entry per distinct
        # package for it would grow the cache along the whole package lattice.
        self._always_true = constraint.is_empty_constraint()

    def _on_database_change(self, version: Tuple[Tuple[str, int], ...]) -> None:
        """React to a version-snapshot mismatch: retain or clear the cache."""
        footprint = self._footprint
        if footprint is not None and self._cache:
            old = dict(self._database_version)
            new = dict(version)
            changed = {
                name
                for name in old.keys() | new.keys()
                if old.get(name) != new.get(name)
            }
            if footprint.isdisjoint(changed):
                self.retentions += 1
                active = _metrics._ACTIVE
                if active is not None:
                    active.inc("oracle.verdict.retentions")
                self._database_version = version
                return
        if self._cache:
            self.invalidations += 1
            active = _metrics._ACTIVE
            if active is not None:
                active.inc("oracle.verdict.invalidations")
        self._cache.clear()
        self._database_version = version

    def is_satisfied(self, package: Package) -> bool:
        """The constraint's verdict on ``package``, served from cache when possible."""
        if self._always_true:
            return True
        if not self.enabled:
            return self.constraint.is_satisfied(package, self.database)
        version = self.database.version()
        if version != self._database_version:
            self._on_database_change(version)
        key = (package.schema.attribute_names, package.items)
        cached = self._cache.get(key)
        if cached is not None:
            self.hits += 1
            active = _metrics._ACTIVE
            if active is not None:
                active.inc("oracle.verdict.hits")
            return cached
        self.misses += 1
        active = _metrics._ACTIVE
        if active is not None:
            active.inc("oracle.verdict.misses")
        span = _tracing.begin("probe")
        try:
            verdict = self.constraint.is_satisfied(package, self.database)
        finally:
            _tracing.finish(span)
        self._cache[key] = verdict
        return verdict

    def cache_info(self) -> "dict[str, object]":
        """Hit/miss accounting plus the current cache size."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._cache),
            "enabled": self.enabled,
            "invalidations": self.invalidations,
            "retentions": self.retentions,
        }

    def clear(self) -> None:
        """Drop every cached verdict and reset the accounting."""
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.retentions = 0
        self._database_version = self.database.version()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CompatibilityOracle({self.constraint.describe()}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def at_most_k_with_value(
    attribute: str, value, limit: int, description: Optional[str] = None
) -> PredicateConstraint:
    """A predicate constraint "at most ``limit`` items with ``attribute = value``".

    This is the PTIME counterpart of the paper's "no more than 2 museums"
    CQ constraint, handy for examples and for the Corollary 6.3 ablation.
    """

    def predicate(package: Package, database: Database) -> bool:
        return sum(1 for item_value in package.column(attribute) if item_value == value) <= limit

    return PredicateConstraint(
        predicate,
        description or f"at most {limit} items with {attribute} = {value!r}",
        relations=(),
    )


def all_distinct_on(attribute: str, description: Optional[str] = None) -> PredicateConstraint:
    """A predicate constraint "no two items share a value of ``attribute``"."""

    def predicate(package: Package, database: Database) -> bool:
        values = package.column(attribute)
        return len(values) == len(set(values))

    return PredicateConstraint(
        predicate, description or f"items pairwise distinct on {attribute}", relations=()
    )


def all_equal_on(attribute: str, description: Optional[str] = None) -> PredicateConstraint:
    """A predicate constraint "all items agree on ``attribute``".

    The paper's travel packages consist of items sharing one flight number;
    this is that condition for an arbitrary attribute.  It is anti-monotone.
    """

    def predicate(package: Package, database: Database) -> bool:
        values = set(package.column(attribute))
        return len(values) <= 1

    return PredicateConstraint(
        predicate, description or f"items agree on {attribute}", relations=()
    )
