"""MBP — the maximum bound problem.

A constant ``B`` is a *rating bound* for ``(Q, D, Qc, cost, val, C, k)`` when
there exist k distinct valid packages all rated ≥ B; it is the *maximum*
bound when no larger constant is also a bound.  The paper characterises the
yes-instances as the intersection ``L1 ∩ L2``:

* ``L1`` — k distinct valid packages rated ≥ B exist, and
* ``L2`` — k distinct valid packages rated *strictly above* B do **not** exist

(the second condition is equivalent to "no bound B′ > B works" because any
such B′ would have to be witnessed by k packages rated > B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.enumeration import PackageSearchEngine
from repro.core.model import RecommendationProblem


@dataclass(frozen=True)
class MBPResult:
    """Outcome of an MBP check."""

    is_maximum_bound: bool
    is_bound: bool
    has_higher_bound: bool
    reason: str

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_maximum_bound


def _has_k_packages(
    problem: RecommendationProblem, rating_bound: float, strict: bool
) -> bool:
    """Whether k distinct valid packages rated ≥ (or >) the bound exist.

    Runs the engine's counting scan with an early exit at ``k`` — packages are
    never materialised, and the walk stops the moment the k-th witness is
    counted.
    """
    engine = PackageSearchEngine(problem)
    return (
        engine.count_valid(rating_bound=rating_bound, strict=strict, stop_at=problem.k)
        >= problem.k
    )


def is_rating_bound(problem: RecommendationProblem, bound: float) -> bool:
    """Membership in ``L1``: does some top-k selection rate every package ≥ bound?"""
    return _has_k_packages(problem, bound, strict=False)


def is_maximum_bound(problem: RecommendationProblem, bound: float) -> MBPResult:
    """Decide MBP: is ``bound`` the maximum rating bound?"""
    in_l1 = _has_k_packages(problem, bound, strict=False)
    in_l2_complement = _has_k_packages(problem, bound, strict=True)
    if not in_l1:
        return MBPResult(False, False, in_l2_complement, f"{bound} is not even a rating bound")
    if in_l2_complement:
        return MBPResult(
            False, True, True, f"{bound} is a bound but k packages rated above it exist"
        )
    return MBPResult(True, True, False, f"{bound} is the maximum rating bound")


def maximum_bound(problem: RecommendationProblem) -> Optional[float]:
    """Compute the maximum bound directly (``None`` when no top-k selection exists).

    The maximum bound equals the k-th largest rating over all valid packages:
    the k best packages witness it, and any larger constant would exclude one
    of them with no replacement.
    """
    ratings = sorted(PackageSearchEngine(problem).valid_ratings(), reverse=True)
    if len(ratings) < problem.k:
        return None
    return ratings[problem.k - 1]
