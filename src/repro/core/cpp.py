"""CPP — the counting problem: how many valid packages are rated ≥ B?

A package ``N`` is *valid for* ``(Q, D, Qc, cost, val, C, B)`` when
``N ⊆ Q(D)``, ``Qc(N, D) = ∅``, ``cost(N) ≤ C`` and ``val(N) ≥ B`` with
``|N|`` within the size bound.  CPP asks for the number of such packages.

The solver enumerates candidates; its complexity tracks the paper's #·coNP /
#·NP (combined) and #·P (data) classifications — exponential in ``|Q(D)|``
for polynomially bounded packages, polynomial for a constant bound
(Corollary 6.1 gives FP there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.enumeration import PackageSearchEngine
from repro.core.model import RecommendationProblem


@dataclass(frozen=True)
class CPPResult:
    """Outcome of a CPP computation."""

    count: int
    rating_bound: float
    by_size: Tuple[Tuple[int, int], ...] = ()

    def __int__(self) -> int:  # pragma: no cover - convenience
        return self.count


def count_valid_packages(
    problem: RecommendationProblem,
    rating_bound: float,
    max_candidates: Optional[int] = None,
) -> CPPResult:
    """Count the packages valid for ``(Q, D, Qc, cost, val, C, B)``.

    The per-size histogram in the result is not part of the paper's problem
    statement but is cheap to produce and useful both in tests (it must sum to
    the count) and in the benchmark report (it shows where the mass of valid
    packages sits).

    The count rides the engine's non-materializing scan: no package objects
    survive a lattice node, no generator frames are kept alive — the solver
    touches exactly the counters.
    """
    engine = PackageSearchEngine(problem)
    total, histogram = engine.count_valid(
        rating_bound=rating_bound, max_candidates=max_candidates, by_size=True
    )
    return CPPResult(
        count=total,
        rating_bound=rating_bound,
        by_size=tuple(sorted(histogram.items())),
    )


def count_all_valid_packages(problem: RecommendationProblem) -> int:
    """Count the valid packages with no rating bound (B = -∞)."""
    return PackageSearchEngine(problem).count_valid()
