"""The EXISTPACK≥ oracle of Theorem 5.1.

``EXISTPACK≥(Q, D, Qc, cost, val, C, N, v)`` answers whether there exists a
valid package ``N ⊆ Q(D)`` with ``val(N) ≥ v`` that differs from every package
already in the partial selection ``N``.  In the paper this is a Σ₂ᵖ oracle;
here it is a deterministic search that also returns a witness.  The class
keeps a call counter so that benchmarks can report "number of oracle calls" —
the machine-independent cost measure the paper's FP^NP / FP^Σ₂ᵖ upper bounds
are stated in.

The oracle owns one :class:`~repro.core.enumeration.PackageSearchEngine` over
its snapshot of ``Q(D)``: the binary search of the Theorem 5.1 solver issues
many calls against the same candidate pool, and sharing the engine means the
item sort, the incremental cost/rating compilation and the compatibility
oracle are paid once, not per call.

``candidate_items`` is captured at construction and never refreshed, so an
oracle built over a *live* database silently answers as of its construction
time once the database mutates.  Under snapshot isolation that pitfall
disappears: build the oracle over a pinned problem
(:meth:`~repro.core.model.RecommendationProblem.pinned`) and the captured
pool *provably* equals the pinned epoch's ``Q(D)`` forever — the serving
layer (:mod:`repro.serving`) relies on this to share one oracle between all
readers of an epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.core.enumeration import PackageSearchEngine
from repro.core.model import RecommendationProblem
from repro.core.packages import Package
from repro.relational.database import Relation


@dataclass
class ExistPackOracle:
    """A callable oracle bound to one recommendation problem."""

    problem: RecommendationProblem
    calls: int = 0
    candidate_items: Optional[Relation] = field(default=None, repr=False)
    _engine: Optional[PackageSearchEngine] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.candidate_items is None:
            self.candidate_items = self.problem.candidate_items()
        self._engine = PackageSearchEngine(self.problem, candidate_items=self.candidate_items)

    @property
    def engine(self) -> PackageSearchEngine:
        """The shared search engine over the oracle's ``Q(D)`` snapshot."""
        return self._engine

    def __call__(
        self,
        rating_bound: float,
        exclude: Iterable[Package] = (),
        strict: bool = False,
    ) -> Optional[Package]:
        """A valid package with ``val ≥ rating_bound`` (or ``>``) outside ``exclude``."""
        self.calls += 1
        return self._engine.first_valid(
            rating_bound=rating_bound, strict=strict, exclude=exclude
        )

    def exists(self, rating_bound: float, exclude: Iterable[Package] = (), strict: bool = False) -> bool:
        """The Boolean answer of the paper's oracle (discarding the witness)."""
        return self(rating_bound, exclude=exclude, strict=strict) is not None

    def reset_counter(self) -> None:
        """Reset the call counter (benchmarks call this between measurements)."""
        self.calls = 0
