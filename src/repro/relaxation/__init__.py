"""Query relaxation recommendations (Section 7 of the paper)."""

from repro.relaxation.distance import (
    AbsoluteDifference,
    DiscreteDistance,
    DistanceFunction,
    TableDistance,
    distance_table,
)
from repro.relaxation.relax import (
    JoinBreakPoint,
    Relaxation,
    RelaxationPoint,
    RelaxationSpace,
    RelaxedQuery,
)
from repro.relaxation.qrpp import (
    ItemQRPPResult,
    QRPPResult,
    find_item_relaxation,
    find_package_relaxation,
    qrpp_decision,
)

__all__ = [
    "AbsoluteDifference",
    "DiscreteDistance",
    "DistanceFunction",
    "ItemQRPPResult",
    "JoinBreakPoint",
    "QRPPResult",
    "Relaxation",
    "RelaxationPoint",
    "RelaxationSpace",
    "RelaxedQuery",
    "TableDistance",
    "distance_table",
    "find_item_relaxation",
    "find_package_relaxation",
    "qrpp_decision",
]
