"""Distance functions Γ used by query relaxation.

Section 7 assumes a distance function ``dist_{R.A}(a, b)`` per attribute; a
constant ``c`` in the query may be relaxed to any value ``b`` with
``dist(c, b) ≤ d``, and the threshold ``d`` is the *level* of that relaxation.
Three concrete families cover the paper's examples (cities within 15 miles,
dates within 3 days, categorical generalisation):

* :class:`AbsoluteDifference` — ``|a − b|`` for numeric attributes;
* :class:`DiscreteDistance` — 0 when equal, 1 otherwise (pure generalisation);
* :class:`TableDistance` — an explicit symmetric lookup table (e.g. road miles
  between airports, taxonomy hops between POI types).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.relational.schema import Value


class DistanceFunction:
    """Base class: a symmetric, non-negative distance on attribute values."""

    def __call__(self, a: Value, b: Value) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass
class AbsoluteDifference(DistanceFunction):
    """``dist(a, b) = |a − b|`` for numeric values."""

    def __call__(self, a: Value, b: Value) -> float:
        return abs(float(a) - float(b))

    def describe(self) -> str:
        return "absolute difference"


@dataclass
class DiscreteDistance(DistanceFunction):
    """``dist(a, b) = 0`` iff ``a = b`` else ``mismatch`` (default 1)."""

    mismatch: float = 1.0

    def __call__(self, a: Value, b: Value) -> float:
        return 0.0 if a == b else self.mismatch

    def describe(self) -> str:
        return f"discrete (≠ costs {self.mismatch})"


@dataclass
class TableDistance(DistanceFunction):
    """A distance given by an explicit table of unordered pairs.

    Missing pairs default to ``default`` (∞ by default, i.e. not relaxable to
    each other); the diagonal is always 0.
    """

    table: Mapping[Tuple[Value, Value], float]
    default: float = math.inf

    def __call__(self, a: Value, b: Value) -> float:
        if a == b:
            return 0.0
        if (a, b) in self.table:
            return float(self.table[(a, b)])
        if (b, a) in self.table:
            return float(self.table[(b, a)])
        return self.default

    def describe(self) -> str:
        return f"table distance over {len(self.table)} pairs"


def distance_table(pairs: Mapping[Tuple[Value, Value], float], default: float = math.inf) -> TableDistance:
    """Convenience constructor for :class:`TableDistance`."""
    return TableDistance(dict(pairs), default)
