"""QRPP — query relaxation recommendations (Section 7.2).

Given a recommendation problem whose selection query finds no (or not enough)
highly rated packages, QRPP asks whether a relaxation ``QΓ`` of the selection
query with ``gap(QΓ) ≤ g`` admits k distinct valid packages rated ≥ B.

:func:`find_package_relaxation` searches the relaxation space in order of
increasing gap and returns the *first* (hence minimum-gap) relaxation that
works, together with witnesses; :func:`qrpp_decision` is the paper's decision
problem.  The item variants restrict packages to singletons rated by a
utility function, which is the case whose data complexity drops to PTIME
(Corollary 7.3).

The relaxed problems are derived with
:meth:`~repro.core.model.RecommendationProblem.with_query`, which shares the
parent problem's memoized compatibility oracle: ``Qc`` and ``D`` do not change
across relaxations, so a package judged (in)compatible under one relaxed query
is never re-checked under another.

For *evolving* databases, :class:`~repro.incremental.streaming.StreamingQRPP`
keeps this search live across a stream of modifications — each relaxed
``QΓ(D)`` is incrementally maintained instead of re-evaluated — and the
incremental differential suite pins it to the from-scratch functions below.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

from repro.core.enumeration import find_k_witnesses
from repro.core.model import RecommendationProblem
from repro.core.packages import Selection
from repro.relational.database import Row
from repro.relaxation.relax import Relaxation, RelaxationSpace, RelaxedQuery


@dataclass(frozen=True)
class QRPPResult:
    """Outcome of a relaxation search."""

    found: bool
    relaxation: Optional[Relaxation] = None
    relaxed_query: Optional[RelaxedQuery] = None
    witnesses: Optional[Selection] = None
    relaxations_tried: int = 0

    @property
    def gap(self) -> Optional[float]:
        """The gap of the found relaxation (``None`` when nothing was found)."""
        return self.relaxation.gap() if self.relaxation is not None else None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.found


def find_package_relaxation(
    problem: RecommendationProblem,
    space: RelaxationSpace,
    rating_bound: float,
    max_gap: float,
    include_trivial: bool = True,
) -> QRPPResult:
    """Search for a minimum-gap relaxation admitting k valid packages rated ≥ B.

    Relaxations are enumerated up to D-equivalence in order of increasing gap,
    so the first hit is gap-minimal.  ``include_trivial`` controls whether the
    un-relaxed query itself (gap 0) counts — the paper poses QRPP when the
    original query fails, but keeping the trivial relaxation in the search
    makes the function also answer "was relaxation even necessary?".
    """
    tried = 0
    for relaxation in space.enumerate_relaxations(
        problem.database, max_gap, include_trivial=include_trivial
    ):
        tried += 1
        relaxed_query = space.relax(relaxation)
        relaxed_problem = problem.with_query(relaxed_query)
        # Each relaxed problem gets its own engine over its own Q(D), but the
        # compatibility oracle underneath is the one shared across relaxations
        # via with_query, so verdict reuse spans the whole search.
        witnesses = find_k_witnesses(relaxed_problem, rating_bound)
        if witnesses is not None:
            return QRPPResult(
                True,
                relaxation=relaxation,
                relaxed_query=relaxed_query,
                witnesses=witnesses,
                relaxations_tried=tried,
            )
    return QRPPResult(False, relaxations_tried=tried)


def qrpp_decision(
    problem: RecommendationProblem,
    space: RelaxationSpace,
    rating_bound: float,
    max_gap: float,
) -> bool:
    """The QRPP decision problem: does *some* relaxation within the gap budget work?"""
    return find_package_relaxation(problem, space, rating_bound, max_gap).found


# ---------------------------------------------------------------------------
# The item special case (Corollary 7.3)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ItemQRPPResult:
    """Outcome of an item-level relaxation search."""

    found: bool
    relaxation: Optional[Relaxation] = None
    relaxed_query: Optional[RelaxedQuery] = None
    items: Tuple[Row, ...] = ()
    relaxations_tried: int = 0

    @property
    def gap(self) -> Optional[float]:
        return self.relaxation.gap() if self.relaxation is not None else None

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.found


def find_item_relaxation(
    problem_database,
    space: RelaxationSpace,
    utility: Callable[[Row], float],
    rating_bound: float,
    k: int,
    max_gap: float,
) -> ItemQRPPResult:
    """QRPP for items: find a minimum-gap relaxation with k items of utility ≥ B.

    For a fixed query this runs in polynomial time in the data: there are
    polynomially many relaxations up to D-equivalence and each check is a scan
    of the relaxed answer (Corollary 7.3).
    """
    tried = 0
    for relaxation in space.enumerate_relaxations(problem_database, max_gap):
        tried += 1
        relaxed_query = space.relax(relaxation)
        answers = [
            row
            for row in relaxed_query.evaluate(problem_database).rows()
            if utility(row) >= rating_bound
        ]
        if len(answers) >= k:
            answers.sort(key=lambda row: (-utility(row), repr(row)))
            return ItemQRPPResult(
                True,
                relaxation=relaxation,
                relaxed_query=relaxed_query,
                items=tuple(answers[:k]),
                relaxations_tried=tried,
            )
    return ItemQRPPResult(False, relaxations_tried=tried)
