"""Query relaxation (Section 7.1).

A conjunctive query is relaxed by (a) replacing a constant ``c`` with a fresh
variable ``w_c`` constrained by ``dist(w_c, c) ≤ d`` and (b) breaking a join by
replacing one occurrence of a repeated variable ``x`` with a fresh variable
``u_x`` constrained by ``dist(u_x, x) ≤ d``.  The *level* of a single
relaxation predicate is its threshold ``d`` (0 when the constant/join is kept
exact) and the level ``gap(QΓ)`` of a relaxed query is the sum of the levels.

Implementation notes
--------------------
Distance predicates are not part of the query languages' built-in predicates,
so a relaxed query is represented by :class:`RelaxedQuery`, a
:class:`~repro.queries.base.Query` that evaluates a rewritten conjunctive
query (with the fresh variables exposed) and then filters bindings by the
distance thresholds.  This matches the semantics of Section 7 while keeping
the base query languages untouched.

Enumerating relaxations "up to D-equivalence" (the trick behind the paper's
upper bounds) is implemented in :class:`RelaxationSpace`: the candidate
thresholds for a relaxation point are exactly the distances from the original
constant to the values present in the relevant column of the database, so only
finitely many — and, for a fixed query, polynomially many — relaxed queries
are ever considered.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from itertools import product
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.queries.ast import Comparison, ComparisonOp, Const, RelationAtom, Term, Var
from repro.queries.base import Query
from repro.queries.cq import ConjunctiveQuery
from repro.queries.sp import SPQuery
from repro.relational.database import Database, Relation, Row
from repro.relational.errors import ModelError
from repro.relational.ordering import row_sort_key, value_sort_key
from repro.relational.schema import Value
from repro.relaxation.distance import DiscreteDistance, DistanceFunction

ATOM = "atom"
COMPARISON = "comparison"


def _safe_distance(distance: "DistanceFunction", a: Value, b: Value) -> Optional[float]:
    """``distance(a, b)``, or ``None`` when the pair is outside its domain.

    Active domains mix value types (city names next to prices); values a
    numeric distance function cannot compare are simply not relaxation
    candidates for that point.
    """
    try:
        return float(distance(a, b))
    except (TypeError, ValueError):
        return None


# ---------------------------------------------------------------------------
# Relaxation points and concrete relaxations
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class RelaxationPoint:
    """One relaxable occurrence of a constant in a conjunctive query."""

    location: str  # ATOM or COMPARISON
    index: int  # which body atom / comparison
    position: int  # term position inside the atom; 0 = left, 1 = right for comparisons
    constant: Value
    distance: DistanceFunction = field(default_factory=DiscreteDistance, compare=False)
    label: str = ""

    def describe(self) -> str:
        where = f"{self.location}[{self.index}]#{self.position}"
        return self.label or f"constant {self.constant!r} at {where}"


@dataclass(frozen=True)
class JoinBreakPoint:
    """One breakable occurrence of a repeated variable (an equijoin to loosen)."""

    variable: str
    index: int  # which body atom carries the occurrence to replace
    position: int
    distance: DistanceFunction = field(default_factory=DiscreteDistance, compare=False)
    label: str = ""

    def describe(self) -> str:
        return self.label or f"join on {self.variable} at atom[{self.index}]#{self.position}"


RelaxablePoint = object  # RelaxationPoint | JoinBreakPoint


@dataclass(frozen=True)
class Relaxation:
    """An assignment of levels (thresholds) to relaxation points."""

    levels: Tuple[Tuple[RelaxablePoint, float], ...]

    def __init__(self, levels: Mapping[RelaxablePoint, float]) -> None:
        object.__setattr__(
            self, "levels", tuple(sorted(levels.items(), key=lambda kv: repr(kv[0])))
        )

    def gap(self) -> float:
        """``gap(QΓ)``: the sum of the relaxation levels."""
        return sum(level for _, level in self.levels)

    def level_of(self, point: RelaxablePoint) -> float:
        """The level assigned to one point (0 when the point is not relaxed)."""
        for candidate, level in self.levels:
            if candidate == point:
                return level
        return 0.0

    def is_trivial(self) -> bool:
        """Whether every level is 0 (the relaxed query equals the original)."""
        return all(level == 0 for _, level in self.levels)

    def describe(self) -> str:
        parts = [f"{point.describe()} ≤ {level}" for point, level in self.levels if level > 0]
        return "no relaxation" if not parts else "; ".join(parts)


# ---------------------------------------------------------------------------
# The relaxed query
# ---------------------------------------------------------------------------
def _as_cq(query: Query) -> ConjunctiveQuery:
    if isinstance(query, ConjunctiveQuery):
        return query
    if isinstance(query, SPQuery):
        return query.to_cq()
    raise ModelError(
        "query relaxation is implemented for conjunctive (and SP) queries; got "
        f"{type(query).__name__}"
    )


@dataclass
class _DistanceFilter:
    """A post-evaluation check attached to one relaxed position."""

    kind: str  # "atom", "comparison" or "join"
    distance: DistanceFunction
    level: float
    constant: Optional[Value] = None
    op: Optional[ComparisonOp] = None
    witness_column: Optional[int] = None  # index into the extra columns
    paired_column: Optional[int] = None
    other_constant: Optional[Value] = None


class RelaxedQuery(Query):
    """``QΓ``: a conjunctive query with some constants/joins loosened by Γ."""

    def __init__(self, base: Query, relaxation: Relaxation) -> None:
        self.base = _as_cq(base)
        self.relaxation = relaxation
        self.name = f"{self.base.name}_relaxed"
        self.answer_name = self.base.answer_name
        self._rewritten, self._filters = self._rewrite()

    # -- rewriting ------------------------------------------------------------
    def _rewrite(self) -> Tuple[ConjunctiveQuery, List[_DistanceFilter]]:
        atoms = list(self.base.atoms)
        comparisons: List[Optional[Comparison]] = list(self.base.comparisons)
        extra_head: List[Term] = []
        filters: List[_DistanceFilter] = []
        fresh_counter = 0

        def fresh(prefix: str) -> Var:
            nonlocal fresh_counter
            fresh_counter += 1
            return Var(f"__{prefix}{fresh_counter}")

        def add_extra(term: Term) -> int:
            extra_head.append(term)
            return len(extra_head) - 1

        for point, level in self.relaxation.levels:
            if level <= 0:
                continue
            if isinstance(point, RelaxationPoint) and point.location == ATOM:
                witness = fresh("w")
                atom = atoms[point.index]
                terms = list(atom.terms)
                terms[point.position] = witness
                atoms[point.index] = RelationAtom(atom.relation, terms)
                filters.append(
                    _DistanceFilter(
                        kind="atom",
                        distance=point.distance,
                        level=level,
                        constant=point.constant,
                        witness_column=add_extra(witness),
                    )
                )
            elif isinstance(point, RelaxationPoint) and point.location == COMPARISON:
                comparison = comparisons[point.index]
                if comparison is None:
                    raise ModelError(
                        "two relaxation points target the same comparison; relax them "
                        "one at a time"
                    )
                other = comparison.right if point.position == 0 else comparison.left
                op = comparison.op.flip() if point.position == 0 else comparison.op
                comparisons[point.index] = None  # replaced by the distance filter
                filter_spec = _DistanceFilter(
                    kind="comparison",
                    distance=point.distance,
                    level=level,
                    constant=point.constant,
                    op=op,
                )
                if isinstance(other, Var):
                    filter_spec.witness_column = add_extra(other)
                else:
                    filter_spec.other_constant = other.value
                filters.append(filter_spec)
            elif isinstance(point, JoinBreakPoint):
                witness = fresh("u")
                atom = atoms[point.index]
                terms = list(atom.terms)
                terms[point.position] = witness
                atoms[point.index] = RelationAtom(atom.relation, terms)
                filters.append(
                    _DistanceFilter(
                        kind="join",
                        distance=point.distance,
                        level=level,
                        witness_column=add_extra(witness),
                        paired_column=add_extra(Var(point.variable)),
                    )
                )
            else:  # pragma: no cover - defensive
                raise ModelError(f"unknown relaxation point type: {point!r}")

        widened = ConjunctiveQuery(
            tuple(self.base.head) + tuple(extra_head),
            atoms,
            [comparison for comparison in comparisons if comparison is not None],
            name=self.name,
            answer_name=self.answer_name,
        )
        return widened, filters

    # -- Query interface ---------------------------------------------------------
    @property
    def output_attributes(self) -> Tuple[str, ...]:
        return self.base.output_attributes

    def relations_used(self) -> FrozenSet[str]:
        return self.base.relations_used()

    def gap(self) -> float:
        """``gap(QΓ)`` of this relaxed query."""
        return self.relaxation.gap()

    @property
    def active_domain_independent(self) -> bool:
        """True unless a *comparison* was relaxed.

        Relaxed comparisons quantify over the database's active domain ("some
        value within distance d of the constant"), so any tuple inserted
        anywhere can change the answer; relaxed constants and broken joins
        only re-read the query's own relations.
        """
        return not any(spec.kind == "comparison" for spec in self._filters)

    @property
    def widened_query(self) -> ConjunctiveQuery:
        """The rewritten CQ whose answers carry the relaxation witnesses.

        Its head is the base head plus one extra column per relaxed position;
        :meth:`project_filtered` turns its answers into the relaxed answers.
        The incremental subsystem maintains *this* query across deltas (it is
        a plain CQ, so the delta rules apply) and re-projects on read.
        """
        return self._rewritten

    def project_filtered(
        self, widened_rows: Iterable[Row], database: Database
    ) -> Iterator[Row]:
        """Relaxed answer rows from widened-query answer rows.

        Applies the distance filters to the witness columns and projects back
        onto the base head.  The active domain (needed only by relaxed
        *comparisons*, which quantify over it) is taken from ``database`` at
        call time, so callers holding incrementally maintained widened answers
        still see relaxation semantics over the current data.
        """
        base_arity = self.base.output_arity
        if any(spec.kind == "comparison" for spec in self._filters):
            domain: Tuple[Value, ...] = tuple(
                sorted(database.active_domain(), key=value_sort_key)
            )
        else:
            domain = ()
        for row in widened_rows:
            if self._passes_filters(row[base_arity:], domain):
                yield row[:base_arity]

    def evaluate(self, database: Database, counter=None, extra_relations=None) -> Relation:
        widened_answer = self._rewritten.evaluate(
            database, counter=counter, extra_relations=extra_relations
        )
        result = self.empty_answer()
        for row in self.project_filtered(widened_answer, database):
            result.add(row)
        return result

    def _passes_filters(self, extras: Row, domain: Sequence[Value]) -> bool:
        for spec in self._filters:
            if spec.kind == "atom":
                witness = extras[spec.witness_column]
                if spec.distance(witness, spec.constant) > spec.level:
                    return False
            elif spec.kind == "join":
                witness = extras[spec.witness_column]
                partner = extras[spec.paired_column]
                if spec.distance(witness, partner) > spec.level:
                    return False
            else:  # comparison: ∃ w within level of the constant with (other op w)
                other = (
                    extras[spec.witness_column]
                    if spec.witness_column is not None
                    else spec.other_constant
                )
                candidates = tuple(domain) + (spec.constant,)
                if not any(
                    self._comparison_candidate_ok(spec, other, w) for w in candidates
                ):
                    return False
        return True

    @staticmethod
    def _comparison_candidate_ok(spec: _DistanceFilter, other: Value, candidate: Value) -> bool:
        """Whether one active-domain value witnesses a relaxed comparison.

        Values the distance function or the comparison operator cannot handle
        (e.g. strings against a numeric constant) simply do not witness the
        predicate — they are outside the relaxed constant's domain.
        """
        try:
            return (
                spec.distance(candidate, spec.constant) <= spec.level
                and spec.op.apply(other, candidate)
            )
        except (TypeError, ValueError):
            return False

    def __str__(self) -> str:
        return f"{self.base} relaxed by [{self.relaxation.describe()}]"


# ---------------------------------------------------------------------------
# The relaxation space: points + candidate levels (up to D-equivalence)
# ---------------------------------------------------------------------------
@dataclass
class RelaxationSpace:
    """The set of relaxable positions of one query plus their distance functions."""

    query: Query
    points: Tuple[RelaxablePoint, ...]

    @classmethod
    def for_constants(
        cls,
        query: Query,
        distances: Optional[Mapping[Value, DistanceFunction]] = None,
        default_distance: Optional[DistanceFunction] = None,
        include: Optional[Iterable[Value]] = None,
    ) -> "RelaxationSpace":
        """Discover every constant occurrence of the query as a relaxation point.

        ``distances`` maps constant values to their distance function;
        ``include`` restricts which constants are relaxable (the paper's set
        ``E``).  Constants not covered get ``default_distance`` (discrete by
        default).
        """
        cq_query = _as_cq(query)
        distances = dict(distances or {})
        default = default_distance or DiscreteDistance()
        allowed = set(include) if include is not None else None
        points: List[RelaxablePoint] = []
        for atom_index, atom in enumerate(cq_query.atoms):
            for position, term in enumerate(atom.terms):
                if isinstance(term, Const):
                    if allowed is not None and term.value not in allowed:
                        continue
                    points.append(
                        RelaxationPoint(
                            ATOM,
                            atom_index,
                            position,
                            term.value,
                            distances.get(term.value, default),
                            label=f"{atom.relation}[{position}] = {term.value!r}",
                        )
                    )
        for comparison_index, comparison in enumerate(cq_query.comparisons):
            for position, term in enumerate((comparison.left, comparison.right)):
                if isinstance(term, Const):
                    if allowed is not None and term.value not in allowed:
                        continue
                    points.append(
                        RelaxationPoint(
                            COMPARISON,
                            comparison_index,
                            position,
                            term.value,
                            distances.get(term.value, default),
                            label=f"comparison ({comparison}) side {position}",
                        )
                    )
        return cls(query=query, points=tuple(points))

    def with_join_breaks(self, distance: Optional[DistanceFunction] = None) -> "RelaxationSpace":
        """Add a break point for every repeated variable occurrence (beyond the first)."""
        cq_query = _as_cq(self.query)
        distance = distance or DiscreteDistance()
        seen: Dict[str, int] = {}
        extra: List[RelaxablePoint] = []
        for atom_index, atom in enumerate(cq_query.atoms):
            for position, term in enumerate(atom.terms):
                if isinstance(term, Var):
                    seen[term.name] = seen.get(term.name, 0) + 1
                    if seen[term.name] > 1:
                        extra.append(JoinBreakPoint(term.name, atom_index, position, distance))
        return replace(self, points=self.points + tuple(extra))

    # -- candidate levels ------------------------------------------------------------
    def candidate_levels(
        self, point: RelaxablePoint, database: Database, max_gap: float
    ) -> Tuple[float, ...]:
        """Thresholds worth trying for one point, up to D-equivalence.

        Always contains 0 (no relaxation); the other candidates are the
        distances from the original constant to the values actually present in
        the database column the point touches (capped by ``max_gap``).
        """
        values = self._column_values(point, database)
        levels = {0.0}
        if isinstance(point, RelaxationPoint):
            for value in values:
                distance = _safe_distance(point.distance, point.constant, value)
                if distance is not None and 0 < distance <= max_gap:
                    levels.add(float(distance))
        else:
            for a in values:
                for b in values:
                    if a == b:
                        continue
                    distance = _safe_distance(point.distance, a, b)
                    if distance is not None and 0 < distance <= max_gap:
                        levels.add(float(distance))
        return tuple(sorted(levels))

    def _column_values(self, point: RelaxablePoint, database: Database) -> Tuple[Value, ...]:
        cq_query = _as_cq(self.query)
        if isinstance(point, RelaxationPoint) and point.location == ATOM:
            atom = cq_query.atoms[point.index]
            relation = database.relation(atom.relation)
            return tuple(
                sorted({row[point.position] for row in relation}, key=value_sort_key)
            )
        if isinstance(point, JoinBreakPoint):
            atom = cq_query.atoms[point.index]
            relation = database.relation(atom.relation)
            return tuple(
                sorted({row[point.position] for row in relation}, key=value_sort_key)
            )
        return tuple(sorted(database.active_domain(), key=value_sort_key))

    def enumerate_relaxations(
        self, database: Database, max_gap: float, include_trivial: bool = True
    ) -> Iterator[Relaxation]:
        """All relaxations with ``gap ≤ max_gap``, in order of increasing gap."""
        per_point = [self.candidate_levels(point, database, max_gap) for point in self.points]
        combos: List[Tuple[float, Tuple[float, ...], Dict[RelaxablePoint, float]]] = []
        for levels in product(*per_point) if per_point else [()]:
            assignment = dict(zip(self.points, levels))
            total = sum(levels)
            if total <= max_gap:
                combos.append((total, levels, assignment))
        # Ties on the total break on the per-point level tuple (the points are
        # a fixed sequence, so the tuple determines the assignment) through
        # the typed total order — never repr text.
        combos.sort(key=lambda combo: (combo[0], row_sort_key(combo[1])))
        for total, _levels, assignment in combos:
            relaxation = Relaxation(assignment)
            if not include_trivial and relaxation.is_trivial():
                continue
            yield relaxation

    def relax(self, relaxation: Relaxation) -> RelaxedQuery:
        """The relaxed query ``QΓ`` for a concrete level assignment."""
        return RelaxedQuery(self.query, relaxation)

    def __len__(self) -> int:
        return len(self.points)
