"""Propositional and quantified-Boolean-formula substrate.

The paper's lower bounds are reductions from classical complete problems:
3SAT, SAT-UNSAT, MAX-WEIGHT SAT, #SAT, ∃*∀*3DNF, ∃*∀*3DNF–∀*∃*3CNF, #Σ₁SAT
and #Π₁SAT.  This subpackage provides the formula data structures, reference
solvers (DPLL for CNF, brute force for the quantified variants — the instances
used in tests and benchmarks are small by design) and random instance
generators, so that the executable reductions in :mod:`repro.reductions` can
be validated in both directions.
"""

from repro.logic.formulas import (
    Clause,
    CNFFormula,
    DNFFormula,
    Literal,
    Term3,
    TruthAssignment,
)
from repro.logic.problems import (
    ExistsForallDNF,
    MaxWeightSATInstance,
    SATUNSATInstance,
    SigmaPiCountingInstance,
)
from repro.logic.solvers import (
    count_models,
    count_sigma1_assignments,
    count_pi1_assignments,
    dpll_satisfiable,
    enumerate_assignments,
    exists_forall_dnf_true,
    max_weight_assignment,
)
from repro.logic.generators import (
    random_3cnf,
    random_3dnf,
    random_exists_forall_dnf,
    random_max_weight_sat,
    random_sat_unsat,
)

__all__ = [
    "CNFFormula",
    "Clause",
    "DNFFormula",
    "ExistsForallDNF",
    "Literal",
    "MaxWeightSATInstance",
    "SATUNSATInstance",
    "SigmaPiCountingInstance",
    "Term3",
    "TruthAssignment",
    "count_models",
    "count_pi1_assignments",
    "count_sigma1_assignments",
    "dpll_satisfiable",
    "enumerate_assignments",
    "exists_forall_dnf_true",
    "max_weight_assignment",
    "random_3cnf",
    "random_3dnf",
    "random_exists_forall_dnf",
    "random_max_weight_sat",
    "random_sat_unsat",
]
