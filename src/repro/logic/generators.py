"""Random instance generators for the propositional substrate.

Used by the benchmark harness (to sweep instance sizes) and by the
property-based tests (to cross-check reductions against the reference
solvers).  All generators take an explicit :class:`random.Random` or a seed so
that every experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from repro.logic.formulas import CNFFormula, Clause, DNFFormula, Literal, Term3
from repro.logic.problems import (
    ExistsForallDNF,
    MaxWeightSATInstance,
    SATUNSATInstance,
)

RandomLike = Union[int, random.Random, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _variable_names(prefix: str, count: int) -> List[str]:
    return [f"{prefix}{i}" for i in range(1, count + 1)]


def _random_literals(
    rng: random.Random, variables: Sequence[str], width: int
) -> List[Literal]:
    chosen = rng.sample(list(variables), min(width, len(variables)))
    return [Literal(variable, rng.random() < 0.5) for variable in chosen]


def random_3cnf(
    num_variables: int,
    num_clauses: int,
    seed: RandomLike = None,
    prefix: str = "x",
) -> CNFFormula:
    """A random 3CNF formula over ``num_variables`` variables."""
    rng = _rng(seed)
    variables = _variable_names(prefix, num_variables)
    clauses = [Clause(_random_literals(rng, variables, 3)) for _ in range(num_clauses)]
    return CNFFormula(clauses)


def random_3dnf(
    num_variables: int,
    num_terms: int,
    seed: RandomLike = None,
    prefix: str = "x",
) -> DNFFormula:
    """A random 3DNF formula over ``num_variables`` variables."""
    rng = _rng(seed)
    variables = _variable_names(prefix, num_variables)
    terms = [Term3(_random_literals(rng, variables, 3)) for _ in range(num_terms)]
    return DNFFormula(terms)


def random_exists_forall_dnf(
    num_exists: int,
    num_forall: int,
    num_terms: int,
    seed: RandomLike = None,
) -> ExistsForallDNF:
    """A random ∃*∀*3DNF sentence with disjoint X / Y variable blocks."""
    rng = _rng(seed)
    exists_vars = _variable_names("x", num_exists)
    forall_vars = _variable_names("y", num_forall)
    pool = exists_vars + forall_vars
    terms = [Term3(_random_literals(rng, pool, 3)) for _ in range(num_terms)]
    return ExistsForallDNF(tuple(exists_vars), tuple(forall_vars), DNFFormula(terms))


def random_sat_unsat(
    num_variables: int,
    num_clauses: int,
    seed: RandomLike = None,
) -> SATUNSATInstance:
    """A random SAT-UNSAT instance (φ₁ over x-variables, φ₂ over y-variables)."""
    rng = _rng(seed)
    phi1 = random_3cnf(num_variables, num_clauses, seed=rng, prefix="x")
    phi2 = random_3cnf(num_variables, num_clauses, seed=rng, prefix="y")
    return SATUNSATInstance(phi1, phi2)


def random_max_weight_sat(
    num_variables: int,
    num_clauses: int,
    max_weight: int = 10,
    seed: RandomLike = None,
) -> MaxWeightSATInstance:
    """A random MAX-WEIGHT SAT instance with integer weights in [1, max_weight]."""
    rng = _rng(seed)
    formula = random_3cnf(num_variables, num_clauses, seed=rng)
    weights = tuple(rng.randint(1, max_weight) for _ in range(num_clauses))
    return MaxWeightSATInstance(formula, weights)


def unsatisfiable_3cnf(num_variables: int = 2, prefix: str = "y") -> CNFFormula:
    """A small, certainly unsatisfiable CNF: all sign patterns over two variables."""
    if num_variables < 2:
        raise ValueError("need at least two variables to build the contradiction gadget")
    a, b = f"{prefix}1", f"{prefix}2"
    clauses = [
        Clause([Literal(a, True), Literal(b, True)]),
        Clause([Literal(a, True), Literal(b, False)]),
        Clause([Literal(a, False), Literal(b, True)]),
        Clause([Literal(a, False), Literal(b, False)]),
    ]
    return CNFFormula(clauses)
