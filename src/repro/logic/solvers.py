"""Reference solvers for the propositional substrate.

DPLL with unit propagation for CNF satisfiability; brute-force enumeration for
the quantified and counting variants.  All are exponential in the worst case —
that is inherent (they solve NP/Σ₂ᵖ/#P-complete problems) and is exactly the
behaviour the paper's reductions transfer to the recommendation problems.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.logic.formulas import CNFFormula, Clause, DNFFormula, Literal, TruthAssignment
from repro.logic.problems import (
    ExistsForallDNF,
    MaxWeightSATInstance,
    SigmaPiCountingInstance,
)


def enumerate_assignments(variables: Sequence[str]) -> Iterator[TruthAssignment]:
    """All 2^n truth assignments of ``variables`` in a deterministic order."""
    variables = list(variables)
    for bits in product((False, True), repeat=len(variables)):
        yield dict(zip(variables, bits))


# ---------------------------------------------------------------------------
# CNF satisfiability (DPLL)
# ---------------------------------------------------------------------------
def _simplify(clauses: Tuple[Tuple[Literal, ...], ...], variable: str, value: bool):
    """Apply an assignment: drop satisfied clauses, shrink the others."""
    simplified = []
    for clause in clauses:
        satisfied = False
        remaining = []
        for literal in clause:
            if literal.variable == variable:
                if literal.positive == value:
                    satisfied = True
                    break
            else:
                remaining.append(literal)
        if satisfied:
            continue
        if not remaining:
            return None  # empty clause: conflict
        simplified.append(tuple(remaining))
    return tuple(simplified)


def dpll_satisfiable(formula: CNFFormula) -> Optional[TruthAssignment]:
    """A satisfying assignment of ``formula`` or ``None``.

    Classic DPLL: unit propagation, then branch on the most frequent variable.
    The returned assignment binds only the variables DPLL had to decide; use
    :func:`complete_assignment` when a total assignment is needed.
    """
    clauses = tuple(tuple(clause.literals) for clause in formula.clauses)
    assignment: TruthAssignment = {}

    def solve(clauses, assignment) -> Optional[TruthAssignment]:
        # Unit propagation.
        changed = True
        while changed:
            changed = False
            for clause in clauses:
                if len(clause) == 1:
                    literal = clause[0]
                    clauses = _simplify(clauses, literal.variable, literal.positive)
                    if clauses is None:
                        return None
                    assignment = dict(assignment)
                    assignment[literal.variable] = literal.positive
                    changed = True
                    break
        if not clauses:
            return assignment
        # Branch on the most frequent variable.
        counts: Dict[str, int] = {}
        for clause in clauses:
            for literal in clause:
                counts[literal.variable] = counts.get(literal.variable, 0) + 1
        variable = max(counts, key=lambda name: (counts[name], name))
        for value in (True, False):
            reduced = _simplify(clauses, variable, value)
            if reduced is None:
                continue
            extended = dict(assignment)
            extended[variable] = value
            result = solve(reduced, extended)
            if result is not None:
                return result
        return None

    return solve(clauses, assignment)


def complete_assignment(
    formula: CNFFormula, partial: Optional[TruthAssignment]
) -> Optional[TruthAssignment]:
    """Extend a partial satisfying assignment to all variables (False default)."""
    if partial is None:
        return None
    total = {variable: False for variable in formula.variables()}
    total.update(partial)
    return total


def count_models(formula: CNFFormula) -> int:
    """#SAT by enumeration over all variables of the formula."""
    return sum(1 for mu in enumerate_assignments(formula.variables()) if formula.evaluate(mu))


# ---------------------------------------------------------------------------
# MAX-WEIGHT SAT
# ---------------------------------------------------------------------------
def max_weight_assignment(
    instance: MaxWeightSATInstance,
) -> Tuple[TruthAssignment, int]:
    """The assignment maximising total satisfied weight, and that weight."""
    variables = instance.formula.variables()
    best_assignment: TruthAssignment = {variable: False for variable in variables}
    best_weight = instance.weight_of(best_assignment)
    for assignment in enumerate_assignments(variables):
        weight = instance.weight_of(assignment)
        if weight > best_weight:
            best_assignment, best_weight = assignment, weight
    return best_assignment, best_weight


# ---------------------------------------------------------------------------
# Quantified variants
# ---------------------------------------------------------------------------
def forall_holds(
    matrix: DNFFormula, outer: TruthAssignment, forall_variables: Sequence[str]
) -> bool:
    """Whether ``∀ forall_variables  matrix`` holds under the outer assignment."""
    for mu_y in enumerate_assignments(forall_variables):
        combined = dict(outer)
        combined.update(mu_y)
        if not matrix.evaluate(combined):
            return False
    return True


def exists_forall_dnf_true(instance: ExistsForallDNF) -> bool:
    """Truth of a ∃*∀*3DNF sentence by brute force."""
    for mu_x in enumerate_assignments(instance.exists_variables):
        if forall_holds(instance.matrix, mu_x, instance.forall_variables):
            return True
    return False


def last_witness(instance: ExistsForallDNF) -> Optional[TruthAssignment]:
    """The lexicographically *last* ∃-assignment that makes the sentence true.

    This is the "maximum Σ₂ᵖ" function the FRP combined-complexity lower bound
    reduces from (Theorem 5.1); exposing it lets tests compare the recommended
    package against the ground truth.
    """
    best: Optional[TruthAssignment] = None
    for mu_x in enumerate_assignments(instance.exists_variables):
        if forall_holds(instance.matrix, mu_x, instance.forall_variables):
            best = mu_x  # enumeration order is lexicographic with False < True
    return best


def count_quantified_assignments(instance: SigmaPiCountingInstance) -> int:
    """#Σ₁SAT / #Π₁SAT by enumeration of the free block."""
    count = 0
    for mu_free in enumerate_assignments(instance.free_variables):
        if instance.universal:
            holds = all(
                instance.matrix_evaluate({**mu_free, **mu_q})
                for mu_q in enumerate_assignments(instance.quantified_variables)
            )
        else:
            holds = any(
                instance.matrix_evaluate({**mu_free, **mu_q})
                for mu_q in enumerate_assignments(instance.quantified_variables)
            )
        if holds:
            count += 1
    return count


def count_sigma1_assignments(
    quantified: Sequence[str], free: Sequence[str], matrix: CNFFormula
) -> int:
    """#Σ₁SAT: number of free assignments with ∃ quantified-block making matrix true."""
    instance = SigmaPiCountingInstance(
        tuple(quantified), tuple(free), cnf_matrix=matrix, universal=False
    )
    return count_quantified_assignments(instance)


def count_pi1_assignments(
    quantified: Sequence[str], free: Sequence[str], matrix: DNFFormula
) -> int:
    """#Π₁SAT: number of free assignments with ∀ quantified-block making matrix true."""
    instance = SigmaPiCountingInstance(
        tuple(quantified), tuple(free), dnf_matrix=matrix, universal=True
    )
    return count_quantified_assignments(instance)
