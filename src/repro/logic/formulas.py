"""Propositional formulas in clausal form.

CNF formulas are conjunctions of clauses (disjunctions of literals); DNF
formulas are disjunctions of terms (conjunctions of literals).  Variables are
plain strings; a truth assignment is a mapping from variable names to bools.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Mapping, Sequence, Tuple

TruthAssignment = Dict[str, bool]


@dataclass(frozen=True)
class Literal:
    """A propositional literal: a variable or its negation."""

    variable: str
    positive: bool = True

    def negate(self) -> "Literal":
        """The complementary literal."""
        return Literal(self.variable, not self.positive)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Truth value under an assignment that must bind the variable."""
        value = assignment[self.variable]
        return value if self.positive else not value

    def __str__(self) -> str:
        return self.variable if self.positive else f"¬{self.variable}"


def lit(variable: str, positive: bool = True) -> Literal:
    """Shorthand constructor used throughout the reductions."""
    return Literal(variable, positive)


@dataclass(frozen=True)
class Clause:
    """A disjunction of literals (one clause of a CNF formula)."""

    literals: Tuple[Literal, ...]

    def __init__(self, literals: Iterable[Literal]) -> None:
        object.__setattr__(self, "literals", tuple(literals))

    def variables(self) -> FrozenSet[str]:
        return frozenset(l.variable for l in self.literals)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(l.evaluate(assignment) for l in self.literals)

    def satisfying_local_assignments(self) -> Tuple[TruthAssignment, ...]:
        """All assignments of the clause's own variables that satisfy it.

        The reductions of Lemma 4.4 and the MAX-WEIGHT SAT encoding create one
        database tuple per clause per satisfying local assignment; exposing the
        enumeration here keeps those encodings short and testable.
        """
        names = sorted(self.variables())
        result = []
        for bits in range(2 ** len(names)):
            assignment = {
                name: bool((bits >> index) & 1) for index, name in enumerate(names)
            }
            if self.evaluate(assignment):
                result.append(assignment)
        return tuple(result)

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:
        return "(" + " ∨ ".join(str(l) for l in self.literals) + ")"


@dataclass(frozen=True)
class Term3:
    """A conjunction of literals (one term of a DNF formula)."""

    literals: Tuple[Literal, ...]

    def __init__(self, literals: Iterable[Literal]) -> None:
        object.__setattr__(self, "literals", tuple(literals))

    def variables(self) -> FrozenSet[str]:
        return frozenset(l.variable for l in self.literals)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(l.evaluate(assignment) for l in self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def __str__(self) -> str:
        return "(" + " ∧ ".join(str(l) for l in self.literals) + ")"


class _ClausalFormula:
    """Shared behaviour of CNF and DNF formulas."""

    parts: Tuple

    def variables(self) -> Tuple[str, ...]:
        """All variables, sorted by name."""
        names: set = set()
        for part in self.parts:
            names |= part.variables()
        return tuple(sorted(names))

    def __len__(self) -> int:
        return len(self.parts)


@dataclass(frozen=True)
class CNFFormula(_ClausalFormula):
    """A conjunction of clauses."""

    parts: Tuple[Clause, ...]

    def __init__(self, clauses: Iterable[Clause]) -> None:
        object.__setattr__(self, "parts", tuple(clauses))

    @property
    def clauses(self) -> Tuple[Clause, ...]:
        return self.parts

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return all(clause.evaluate(assignment) for clause in self.parts)

    def is_3cnf(self) -> bool:
        """Whether every clause has at most three literals."""
        return all(len(clause) <= 3 for clause in self.parts)

    def __str__(self) -> str:
        return " ∧ ".join(str(c) for c in self.parts)


@dataclass(frozen=True)
class DNFFormula(_ClausalFormula):
    """A disjunction of terms."""

    parts: Tuple[Term3, ...]

    def __init__(self, terms: Iterable[Term3]) -> None:
        object.__setattr__(self, "parts", tuple(terms))

    @property
    def terms(self) -> Tuple[Term3, ...]:
        return self.parts

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        return any(term.evaluate(assignment) for term in self.parts)

    def is_3dnf(self) -> bool:
        """Whether every term has at most three literals."""
        return all(len(term) <= 3 for term in self.parts)

    def negate_to_cnf(self) -> CNFFormula:
        """¬(T1 ∨ ... ∨ Tr) as a CNF formula (De Morgan per term)."""
        return CNFFormula(
            Clause([l.negate() for l in term.literals]) for term in self.parts
        )

    def __str__(self) -> str:
        return " ∨ ".join(str(t) for t in self.parts)


def cnf(*clauses: Sequence[Tuple[str, bool]]) -> CNFFormula:
    """Build a CNF formula from ``(variable, positive)`` pairs.

    >>> cnf([("x", True), ("y", False)], [("y", True)])
    matches (x ∨ ¬y) ∧ (y).
    """
    return CNFFormula(Clause(Literal(v, p) for v, p in clause) for clause in clauses)


def dnf(*terms: Sequence[Tuple[str, bool]]) -> DNFFormula:
    """Build a DNF formula from ``(variable, positive)`` pairs."""
    return DNFFormula(Term3(Literal(v, p) for v, p in term) for term in terms)
