"""Instances of the complete problems the paper reduces from.

Each class bundles a formula (or pair of formulas) with the variable
partition the problem statement requires, plus an ``answer`` method that
solves the instance by brute force / DPLL.  These reference answers are what
the executable reductions in :mod:`repro.reductions` are validated against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.logic.formulas import CNFFormula, DNFFormula, TruthAssignment


@dataclass(frozen=True)
class ExistsForallDNF:
    """A ∃*∀*3DNF instance ``∃X ∀Y ψ(X, Y)`` with ψ in 3DNF (Σ₂ᵖ-complete)."""

    exists_variables: Tuple[str, ...]
    forall_variables: Tuple[str, ...]
    matrix: DNFFormula

    def __post_init__(self) -> None:
        overlap = set(self.exists_variables) & set(self.forall_variables)
        if overlap:
            raise ValueError(f"variables cannot be both ∃ and ∀ quantified: {sorted(overlap)}")

    def answer(self) -> bool:
        """Whether the sentence is true (brute force over both blocks)."""
        from repro.logic.solvers import exists_forall_dnf_true

        return exists_forall_dnf_true(self)

    def witness(self) -> Optional[TruthAssignment]:
        """A truth assignment of the ∃ block witnessing truth, if any."""
        from repro.logic.solvers import enumerate_assignments, forall_holds

        for mu_x in enumerate_assignments(self.exists_variables):
            if forall_holds(self.matrix, mu_x, self.forall_variables):
                return mu_x
        return None


@dataclass(frozen=True)
class SATUNSATInstance:
    """A SAT-UNSAT instance: a pair (φ₁, φ₂) of 3CNF formulas (DP-complete).

    The question is whether φ₁ is satisfiable *and* φ₂ is unsatisfiable.
    The two formulas are over disjoint variable sets by construction.
    """

    phi1: CNFFormula
    phi2: CNFFormula

    def answer(self) -> bool:
        from repro.logic.solvers import dpll_satisfiable

        return dpll_satisfiable(self.phi1) is not None and dpll_satisfiable(self.phi2) is None

    def components(self) -> Tuple[bool, bool]:
        """(φ₁ satisfiable?, φ₂ satisfiable?) — useful for test parametrisation."""
        from repro.logic.solvers import dpll_satisfiable

        return dpll_satisfiable(self.phi1) is not None, dpll_satisfiable(self.phi2) is not None


@dataclass(frozen=True)
class MaxWeightSATInstance:
    """A MAX-WEIGHT SAT instance: weighted 3-clauses (FPᴺᴾ-complete to optimise)."""

    formula: CNFFormula
    weights: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.weights) != len(self.formula.clauses):
            raise ValueError(
                f"{len(self.weights)} weights for {len(self.formula.clauses)} clauses"
            )

    def weight_of(self, assignment: TruthAssignment) -> int:
        """Total weight of the clauses satisfied by ``assignment``."""
        return sum(
            weight
            for clause, weight in zip(self.formula.clauses, self.weights)
            if clause.evaluate(assignment)
        )

    def answer(self) -> int:
        """The maximum achievable satisfied weight."""
        from repro.logic.solvers import max_weight_assignment

        _, best_weight = max_weight_assignment(self)
        return best_weight


@dataclass(frozen=True)
class SigmaPiCountingInstance:
    """A #Σ₁SAT / #Π₁SAT instance.

    ``φ(X, Y) = ∃X matrix`` (counting #Σ₁SAT, matrix in CNF) or
    ``φ(X, Y) = ∀X matrix`` (counting #Π₁SAT, matrix in DNF); in both cases the
    count ranges over assignments of the *free* variables ``Y``.
    """

    quantified_variables: Tuple[str, ...]
    free_variables: Tuple[str, ...]
    cnf_matrix: Optional[CNFFormula] = None
    dnf_matrix: Optional[DNFFormula] = None
    universal: bool = False

    def __post_init__(self) -> None:
        if (self.cnf_matrix is None) == (self.dnf_matrix is None):
            raise ValueError("exactly one of cnf_matrix / dnf_matrix must be given")

    def matrix_evaluate(self, assignment: TruthAssignment) -> bool:
        if self.cnf_matrix is not None:
            return self.cnf_matrix.evaluate(assignment)
        assert self.dnf_matrix is not None
        return self.dnf_matrix.evaluate(assignment)

    def answer(self) -> int:
        """The number of free-variable assignments making the sentence true."""
        from repro.logic.solvers import count_quantified_assignments

        return count_quantified_assignments(self)
