"""Snapshot-isolated serving: batched reads over pinned epochs, one writer.

The PR 1–5 stack answers one request at a time over a mutable
:class:`~repro.relational.database.Database`.  This module turns it into a
*service*: N recommendation requests in, N package answers out, while a
writer keeps committing :meth:`~repro.relational.database.Database.apply_delta`
batches.  Two server implementations share one request vocabulary:

:class:`SnapshotServer`
    The MVCC front end.  Readers never touch the live database: the server
    pins one :meth:`~repro.core.model.RecommendationProblem.pinned` problem
    per epoch and shares it — and everything warmed through it (the memoized
    compatibility verdicts, the :class:`~repro.core.oracle.ExistPackOracle`'s
    sorted candidate pool, the per-epoch plan-cache entries) — between every
    reader of that epoch.  Because a pinned epoch is immutable, answers are
    also *memoizable*: identical requests within an epoch are computed once
    and the answer is re-served, which is where most of the measured
    throughput win comes from (see ``benchmarks/bench_serving.py``).  A
    commit simply makes the next request pin a fresh epoch; in-flight
    requests finish on the old one.

:class:`GlobalLockServer`
    The pre-MVCC baseline, retained as the reference: one lock serialises
    every request *and* every commit against the shared live database, and
    each request rebuilds its problem state from scratch — over a mutable
    database neither verdicts nor whole answers can be soundly reused across
    requests, because any commit in between would have invalidated them.

Both servers answer through the same pure :func:`execute_request`, so the
tests can re-execute any request serially against a
:meth:`~repro.relational.database.Database.copy` of the pinned epoch and
demand bit-identical answers (ties included).

Requests are canonical, hashable values (:class:`ServeRequest`) and answers
are plain comparable tuples, so results can be deduplicated, memoized and
asserted on without knowing the solver result types.

Failures are *per request* (PR 7): a raising request yields a
:class:`ServeResult` carrying a typed
:class:`~repro.resilience.errors.ServeError` instead of aborting its whole
batch, on both servers.  A :class:`ResilienceConfig` additionally arms the
snapshot server with per-request deadlines/step budgets (honoured deep
inside the evaluator and the lattice DFS via the ambient
:func:`~repro.resilience.deadline.deadline_scope`), bounded-admission load
shedding, and retry-with-backoff for transiently failed requests.  With no
config the server behaves exactly as before — same answers, same epochs.

A :class:`~repro.durability.DurabilityConfig` (PR 9) additionally makes the
snapshot server's writes survive the process: ``apply`` appends each commit
to a write-ahead log and returns only after the record is fsynced — the
return is the durability ack — with optional periodic checkpoints from
pinned snapshots.  ``durability=None`` (the default) is bit-identical
in-memory serving; ``repro recover`` rebuilds the database after a crash.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core import (
    ExistPackOracle,
    RecommendationProblem,
    compute_top_k,
    count_valid_packages,
    is_top_k_selection,
    selection_from_items,
)
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.observability.summary import latency_percentiles  # noqa: F401 (re-export)
from repro.observability.tracing import Span, TraceSampler
from repro.resilience import (
    Deadline,
    ServeError,
    ServerOverloaded,
    classify_error,
    deadline_scope,
    fault_point,
)

Row = Tuple[Any, ...]
Answer = Tuple[Any, ...]

#: The request kinds the servers understand, mapping 1:1 onto the paper's
#: problems: FRP (``top_k``), the EXISTPACK≥ oracle (``exists``), CPP
#: (``count``) and RPP (``check``).
REQUEST_KINDS = ("top_k", "exists", "count", "check")


@dataclass(frozen=True)
class ServeRequest:
    """One recommendation request, canonicalised so it is hashable.

    ``selection_items`` (for ``check``) is a tuple of packages, each a tuple
    of item rows — the raw-tuple form
    :func:`~repro.core.rpp.selection_from_items` accepts.
    """

    kind: str
    rating_bound: Optional[float] = None
    strict: bool = False
    selection_items: Optional[Tuple[Tuple[Row, ...], ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise ValueError(f"unknown request kind {self.kind!r}; expected one of {REQUEST_KINDS}")
        if self.kind in ("exists", "count") and self.rating_bound is None:
            raise ValueError(f"a {self.kind!r} request needs a rating_bound")
        if self.kind == "check" and self.selection_items is None:
            raise ValueError("a 'check' request needs selection_items")
        if self.selection_items is not None:
            canonical = tuple(
                tuple(tuple(item) for item in package) for package in self.selection_items
            )
            object.__setattr__(self, "selection_items", canonical)

    # -- constructors -------------------------------------------------------
    @classmethod
    def top_k(cls) -> "ServeRequest":
        """FRP: the top-k package selection of the problem."""
        return cls("top_k")

    @classmethod
    def exists(cls, rating_bound: float, strict: bool = False) -> "ServeRequest":
        """EXISTPACK≥: is there a valid package rated ≥ (or >) the bound?"""
        return cls("exists", rating_bound=rating_bound, strict=strict)

    @classmethod
    def count(cls, rating_bound: float) -> "ServeRequest":
        """CPP: how many valid packages are rated ≥ the bound?"""
        return cls("count", rating_bound=rating_bound)

    @classmethod
    def check(cls, selection_items: Iterable[Iterable[Row]]) -> "ServeRequest":
        """RPP: is this candidate selection really a top-k selection?"""
        return cls(
            "check",
            selection_items=tuple(tuple(package) for package in selection_items),
        )

    def describe(self) -> str:
        if self.kind == "top_k":
            return "top_k"
        if self.kind == "exists":
            op = ">" if self.strict else "≥"
            return f"exists(val {op} {self.rating_bound})"
        if self.kind == "count":
            return f"count(val ≥ {self.rating_bound})"
        return f"check({len(self.selection_items)} packages)"


@dataclass(frozen=True)
class ServeResult:
    """One answered request: the canonical answer plus serving metadata.

    Exactly one of ``answer`` / ``error`` is meaningful: a successful result
    carries the canonical answer tuple and ``error is None``; a failed one
    carries ``answer is None`` and the typed
    :class:`~repro.resilience.errors.ServeError`.  ``attempts`` counts
    executions (1 with retries off; 0 for a request shed by admission
    control, which never ran).

    ``trace`` carries the request's finished
    :class:`~repro.observability.tracing.Span` tree when the server's
    sampler selected it (``None`` otherwise, and always ``None`` with
    tracing off).  It is serving *metadata*, not part of the answer:
    excluded from equality and repr so traced and untraced results over one
    epoch still compare equal — the on/off differential suite relies on
    exactly that.
    """

    request: ServeRequest
    answer: Optional[Answer]
    epoch: int
    latency_s: float
    error: Optional[ServeError] = None
    attempts: int = 1
    trace: Optional[Span] = field(default=None, compare=False, repr=False)

    @property
    def ok(self) -> bool:
        """Whether the request produced an answer (no error)."""
        return self.error is None


@dataclass(frozen=True)
class ResilienceConfig:
    """The snapshot server's resilience knobs; all off (``None``/0) ≡ PR 6.

    ``deadline_s`` / ``max_steps`` bound each request's wall clock / search
    steps (one shared budget across its retries), enforced inside the
    evaluator and the lattice DFS through the ambient deadline;
    ``max_inflight`` caps concurrently executing requests, shedding the rest
    with a retryable ``overloaded`` error; ``max_retries`` re-executes a
    request whose classified error is retryable (an injected transient
    fault, never a timeout), sleeping ``retry_backoff_s * 2**attempt``
    (capped by the remaining deadline) between attempts.
    """

    deadline_s: Optional[float] = None
    max_steps: Optional[int] = None
    max_inflight: Optional[int] = None
    max_retries: int = 0
    retry_backoff_s: float = 0.0


def execute_request(
    problem: RecommendationProblem,
    request: ServeRequest,
    oracle: Optional[ExistPackOracle] = None,
) -> Answer:
    """Answer one request against one problem; pure, no shared state touched.

    This is the single semantics both servers (and the tests' serial
    re-execution) go through.  Answers are canonical tuples built from sorted
    item rows, so two executions agree exactly iff the underlying solver
    results agree — including rating ties, which surface as the same chosen
    packages because the search engine is deterministic over a fixed epoch.

    ``oracle`` optionally supplies a shared
    :class:`~repro.core.oracle.ExistPackOracle` for ``exists`` requests so a
    server can pay the candidate sort once per epoch; semantics are identical
    to a fresh oracle as long as the oracle was built over ``problem``.
    """
    if request.kind == "top_k":
        result = compute_top_k(problem)
        if result.selection is None:
            return ("top_k", None, ())
        return (
            "top_k",
            tuple(package.sorted_items() for package in result.selection),
            result.ratings,
        )
    if request.kind == "exists":
        if oracle is None:
            oracle = ExistPackOracle(problem)
        witness = oracle(request.rating_bound, strict=request.strict)
        return (
            "exists",
            witness is not None,
            witness.sorted_items() if witness is not None else None,
        )
    if request.kind == "count":
        result = count_valid_packages(problem, rating_bound=request.rating_bound)
        return ("count", result.count)
    candidate = selection_from_items(problem, request.selection_items)
    result = is_top_k_selection(problem, candidate)
    return ("check", result.is_top_k, result.reason)


def _finalize_result(result: ServeResult, root: Optional[Span]) -> ServeResult:
    """Account one finished request and attach its trace, if sampled.

    The single exit point of both servers' request paths: registry updates
    are inline-guarded (metrics off costs one attribute load), and the trace
    attaches through :func:`dataclasses.replace` on the ``compare=False``
    field, so the result's identity-bearing fields are byte-identical to an
    uninstrumented run.
    """
    active = _metrics._ACTIVE
    if active is not None:
        active.inc("serving.requests")
        active.observe("serving.latency_s", result.latency_s)
        if result.error is not None:
            active.inc("serving.errors", label=result.error.code)
            if result.error.code == "overloaded" and result.attempts == 0:
                active.inc("serving.sheds")
        if result.attempts > 1:
            active.inc("serving.retries", result.attempts - 1)
    if root is None:
        return result
    root.attributes.setdefault("epoch", result.epoch)
    root.attributes.setdefault("ok", result.ok)
    root.finish()
    return replace(result, trace=root)


class _EpochContext:
    """Everything the readers of one pinned epoch share.

    One pinned problem (hence one memoized
    :class:`~repro.core.compatibility.CompatibilityOracle` whose verdicts can
    never be invalidated — the pinned relations' versions are frozen), one
    :class:`~repro.core.oracle.ExistPackOracle` whose captured pool provably
    equals the epoch's ``Q(D)``, and one answer memo.  All of it is safe to
    share across threads *because* the epoch is immutable; the only lock is
    around the memo dictionary, never around solver work.
    """

    __slots__ = ("problem", "oracle", "epoch", "_memo", "_lock")

    def __init__(self, pinned: RecommendationProblem) -> None:
        self.problem = pinned
        self.oracle = ExistPackOracle(pinned)
        self.epoch = pinned.database.epoch
        self._memo: Dict[ServeRequest, Answer] = {}
        self._lock = threading.Lock()

    def answer(self, request: ServeRequest) -> Answer:
        with self._lock:
            cached = self._memo.get(request)
        if cached is not None:
            return cached
        # Compute outside the lock: two racing threads may duplicate work on
        # the same request, never corrupt it (the epoch is immutable, so both
        # compute the identical answer and setdefault keeps exactly one).
        answer = execute_request(self.problem, request, oracle=self.oracle)
        with self._lock:
            return self._memo.setdefault(request, answer)


class SnapshotServer:
    """The MVCC serving front end: batched readers, one concurrent writer.

    Readers resolve every request against the epoch current when the request
    starts executing; the writer commits through :meth:`apply` without ever
    blocking them.  ``serve_batch`` deduplicates identical requests up front
    (sound because every answer is tagged with the immutable epoch it was
    computed against) and fans the unique ones out over a thread pool.

    A failing request never takes its batch down: the worker classifies the
    exception and returns an error :class:`ServeResult`.  Error results are
    never memoized (the per-epoch memo only ever sees computed answers), but
    batch deduplication *does* share one error result across duplicate
    requests — within a batch the duplicates would have failed identically.
    An optional :class:`ResilienceConfig` adds deadlines, admission control
    and retries on top; ``resilience=None`` serves exactly as PR 6 did.
    """

    def __init__(
        self,
        problem: RecommendationProblem,
        max_workers: int = 8,
        resilience: Optional[ResilienceConfig] = None,
        tracing: Optional[TraceSampler] = None,
        durability=None,
    ) -> None:
        self._template = problem
        self._database = problem.database
        self._max_workers = max_workers
        self._guard = threading.Lock()
        self._context: Optional[_EpochContext] = None
        self._resilience = resilience
        self._tracing = tracing
        self._admission_lock = threading.Lock()
        self._inflight = 0
        #: Durability knob (a :class:`~repro.durability.DurabilityConfig`):
        #: when set, the database gets a WAL attached at construction and
        #: every :meth:`apply` return is a post-fsync durability ack.
        #: ``None`` (the default) is the knob-contract off position — no
        #: durability import, no log, bit-identical serving.
        self._durability = durability
        self._wal = None
        self._commits_since_checkpoint = 0
        #: Auto-checkpoints run on a background thread (at most one in
        #: flight; the lock also serialises explicit :meth:`checkpoint`
        #: calls against it) so the writer's ``apply`` never absorbs the
        #: image-serialization latency.  A failed background checkpoint
        #: stores its error here and :meth:`close` re-raises it — the
        #: durable state stays consistent either way (old image intact, log
        #: untruncated), so only compaction was lost.
        self._checkpoint_lock = threading.Lock()
        self._checkpoint_thread: Optional[threading.Thread] = None
        self._checkpoint_error: Optional[BaseException] = None
        if durability is not None:
            from repro.durability import open_durable

            # open_durable refuses a directory whose durable epoch does not
            # match this database (attaching anything but the recovered
            # state would fork the history); the caller sees the raise
            # instead of silently losing acked commits on the next recovery.
            self._wal = open_durable(
                self._database,
                durability.directory,
                group_commit=durability.group_commit,
            )

    @property
    def problem(self) -> RecommendationProblem:
        """The live problem template requests are pinned from."""
        return self._template

    @property
    def database(self):
        """The live database the writer commits to."""
        return self._database

    @property
    def wal(self):
        """The attached write-ahead log, or ``None`` (durability off)."""
        return self._wal

    @property
    def epoch(self) -> int:
        return self._database.epoch

    def _current_context(self) -> _EpochContext:
        """The shared context for the current epoch, pinning one if stale.

        Pinning happens under the guard so exactly one thread warms each
        epoch; ``Database.snapshot()`` itself serialises against commits, so
        the pinned epoch is always a consistent world even if a writer races
        the staleness check.
        """
        with self._guard:
            context = self._context
            if context is None or context.epoch != self._database.epoch:
                context = _EpochContext(self._template.pinned())
                self._context = context
            return context

    # -- admission control ---------------------------------------------------
    def _try_admit(self, max_inflight: int) -> bool:
        with self._admission_lock:
            if self._inflight >= max_inflight:
                return False
            self._inflight += 1
            active = _metrics._ACTIVE
            if active is not None:
                active.set_gauge("serving.inflight", self._inflight)
            return True

    def _release(self) -> None:
        with self._admission_lock:
            self._inflight -= 1

    def serve_one(self, request: ServeRequest) -> ServeResult:
        """Answer one request against the epoch current at call time.

        Never raises for a request-level failure: exceptions are classified
        into the typed error taxonomy and returned as an error result.
        """
        start = time.perf_counter()
        config = self._resilience
        sampler = self._tracing
        root: Optional[Span] = None
        if sampler is not None and sampler.sample():
            root = Span("request", kind=request.kind)
        if config is not None and config.max_inflight is not None:
            admit_span = _tracing.child_span(root, "admit")
            admitted = self._try_admit(config.max_inflight)
            _tracing.end_span(admit_span)
            if not admitted:
                error = classify_error(
                    ServerOverloaded(
                        f"request shed: {config.max_inflight} requests already in flight"
                    )
                )
                return _finalize_result(
                    ServeResult(
                        request,
                        None,
                        self._database.epoch,
                        time.perf_counter() - start,
                        error=error,
                        attempts=0,
                    ),
                    root,
                )
            try:
                return self._serve_admitted(request, start, config, root)
            finally:
                self._release()
        return self._serve_admitted(request, start, config, root)

    def _serve_admitted(
        self,
        request: ServeRequest,
        start: float,
        config: Optional[ResilienceConfig],
        root: Optional[Span] = None,
    ) -> ServeResult:
        """The retry loop of one admitted request.

        One :class:`~repro.resilience.deadline.Deadline` is created per
        *request* and shared across its retries — re-execution must not renew
        a budget the client granted once.  Only retryable classified errors
        (transient faults, never timeouts) re-enter the loop, and the
        exponential backoff is capped by the remaining deadline.
        """
        deadline: Optional[Deadline] = None
        max_retries = 0
        if config is not None:
            if config.deadline_s is not None or config.max_steps is not None:
                deadline = Deadline.after(config.deadline_s, max_steps=config.max_steps)
            max_retries = config.max_retries
        attempts = 0
        while True:
            attempts += 1
            epoch = self._database.epoch
            try:
                with deadline_scope(deadline):
                    fault_point("serving.worker")
                    pin_span = _tracing.child_span(root, "snapshot_pin")
                    context = self._current_context()
                    _tracing.end_span(pin_span)
                    epoch = context.epoch
                    exec_span = _tracing.child_span(root, "execute", attempt=attempts)
                    if exec_span is not None:
                        # Installed ambiently only when sampled, so the lower
                        # layers' plan/probe spans find a parent; an untraced
                        # request never pays the contextmanager.
                        try:
                            with _tracing.trace_scope(exec_span):
                                answer = context.answer(request)
                        finally:
                            exec_span.finish()
                    else:
                        answer = context.answer(request)
                return _finalize_result(
                    ServeResult(
                        request,
                        answer,
                        epoch,
                        time.perf_counter() - start,
                        attempts=attempts,
                    ),
                    root,
                )
            except Exception as error:
                serve_error = classify_error(error)
                retry = (
                    serve_error.retryable
                    and attempts <= max_retries
                    and not (deadline is not None and deadline.expired())
                )
                if retry:
                    if config is not None and config.retry_backoff_s > 0.0:
                        delay = config.retry_backoff_s * (2 ** (attempts - 1))
                        if deadline is not None:
                            remaining = deadline.remaining()
                            if remaining is not None and remaining < delay:
                                delay = max(0.0, remaining)
                        if delay > 0.0:
                            time.sleep(delay)
                    continue
                return _finalize_result(
                    ServeResult(
                        request,
                        None,
                        epoch,
                        time.perf_counter() - start,
                        error=serve_error,
                        attempts=attempts,
                    ),
                    root,
                )

    def serve_batch(
        self,
        requests: Sequence[ServeRequest],
        max_workers: Optional[int] = None,
    ) -> List[ServeResult]:
        """Answer N requests, preserving order; duplicates share one compute."""
        requests = list(requests)
        unique = list(dict.fromkeys(requests))
        if not unique:
            return []
        workers = max(1, min(max_workers or self._max_workers, len(unique)))
        if _metrics._ACTIVE is not None:
            # Queue wait = submission to worker pickup; observed inside the
            # worker so the pool's own scheduling is what gets measured.
            submitted = time.perf_counter()

            def _timed(request: ServeRequest) -> ServeResult:
                active = _metrics._ACTIVE
                if active is not None:
                    active.observe(
                        "serving.queue_wait_s", time.perf_counter() - submitted
                    )
                return self.serve_one(request)

            worker = _timed
        else:
            worker = self.serve_one
        with ThreadPoolExecutor(max_workers=workers) as pool:
            served = dict(zip(unique, pool.map(worker, unique)))
        return [served[request] for request in requests]

    def apply(self, delta):
        """The writer's entry point: commit a delta batch, return its undo token.

        With durability configured, the return *is* the ack: the commit's
        WAL record has been fsynced (group commit batches concurrent
        writers' fsyncs) before ``apply_delta`` returns, and — when
        ``checkpoint_every`` is set — every N effective commits hand a
        fresh checkpoint to a background thread (the image serializes from
        a pinned snapshot, so neither this writer nor the readers stall on
        it; if the previous checkpoint is still being written, the trigger
        simply re-arms on the next commit).
        """
        applied = self._database.apply_delta(delta)
        durability = self._durability
        if (
            durability is not None
            and durability.checkpoint_every is not None
            and applied.effective
        ):
            self._commits_since_checkpoint += 1
            if self._commits_since_checkpoint >= durability.checkpoint_every:
                if self._start_background_checkpoint():
                    self._commits_since_checkpoint = 0
        return applied

    def _start_background_checkpoint(self) -> bool:
        """Spawn the auto-checkpoint thread; ``False`` if one is still running."""
        thread = self._checkpoint_thread
        if thread is not None and thread.is_alive():
            return False

        def _run() -> None:
            try:
                self.checkpoint()
            except BaseException as error:  # surfaced by close()
                self._checkpoint_error = error

        thread = threading.Thread(target=_run, name="repro-checkpoint", daemon=True)
        self._checkpoint_thread = thread
        thread.start()
        return True

    def checkpoint(self) -> Optional[int]:
        """Write a durable image of the current epoch; returns its epoch.

        A no-op returning ``None`` with durability off.  The image is taken
        from a pinned snapshot, so readers and the writer continue
        untouched; the WAL is truncated to the records past the image only
        after the image itself is durable.  Safe to call from any thread:
        the checkpoint lock serialises it against the background
        auto-checkpoint (two writers racing ``os.replace`` on the same
        temp file would corrupt neither, but their truncations would
        interleave pointlessly).
        """
        if self._durability is None:
            return None
        from repro.durability import checkpoint_path, write_checkpoint

        with self._checkpoint_lock:
            return write_checkpoint(
                self._database.snapshot(),
                checkpoint_path(self._durability.directory),
                wal=self._wal,
            )

    def close(self) -> None:
        """Detach and close the WAL, if one is attached (idempotent).

        Joins any in-flight background checkpoint first (it truncates the
        WAL being closed), then re-raises the most recent background
        checkpoint failure, if one was stored — compaction failing silently
        would otherwise let the log grow without bound.
        """
        thread = self._checkpoint_thread
        if thread is not None:
            thread.join()
            self._checkpoint_thread = None
        if self._wal is not None:
            self._database.detach_wal()
            self._wal.close()
            self._wal = None
        error, self._checkpoint_error = self._checkpoint_error, None
        if error is not None:
            raise error


class GlobalLockServer:
    """The pre-MVCC baseline: one global lock, fresh state per request.

    Every request takes the lock for its whole execution (readers on the
    live database are not otherwise safe against the writer) and rebuilds
    the problem via
    :meth:`~repro.core.model.RecommendationProblem.with_database`, so each
    request pays a fresh compatibility oracle and a fresh ``Q(D)``
    evaluation.  No answer memo and no batch deduplication: between two
    occurrences of the same request a commit may have changed the world, so
    over the live database reuse would be unsound — which is precisely the
    capability the snapshot server's immutable epochs add.
    """

    def __init__(
        self,
        problem: RecommendationProblem,
        max_workers: int = 8,
        tracing: Optional[TraceSampler] = None,
    ) -> None:
        self._template = problem
        self._database = problem.database
        self._max_workers = max_workers
        self._tracing = tracing
        self._lock = threading.Lock()

    @property
    def problem(self) -> RecommendationProblem:
        return self._template

    @property
    def database(self):
        return self._database

    @property
    def epoch(self) -> int:
        return self._database.epoch

    def serve_one(self, request: ServeRequest) -> ServeResult:
        start = time.perf_counter()
        sampler = self._tracing
        root: Optional[Span] = None
        if sampler is not None and sampler.sample():
            root = Span("request", kind=request.kind)
        epoch = self._database.epoch
        try:
            with self._lock:
                fault_point("serving.worker")
                fresh = self._template.with_database(self._database)
                exec_span = _tracing.child_span(root, "execute")
                if exec_span is not None:
                    try:
                        with _tracing.trace_scope(exec_span):
                            answer = execute_request(fresh, request)
                    finally:
                        exec_span.finish()
                else:
                    answer = execute_request(fresh, request)
                epoch = self._database.epoch
        except Exception as error:
            return _finalize_result(
                ServeResult(
                    request,
                    None,
                    epoch,
                    time.perf_counter() - start,
                    error=classify_error(error),
                ),
                root,
            )
        return _finalize_result(
            ServeResult(request, answer, epoch, time.perf_counter() - start), root
        )

    def serve_batch(
        self,
        requests: Sequence[ServeRequest],
        max_workers: Optional[int] = None,
    ) -> List[ServeResult]:
        requests = list(requests)
        if not requests:
            return []
        workers = max(1, min(max_workers or self._max_workers, len(requests)))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.serve_one, requests))

    def apply(self, delta):
        with self._lock:
            return self._database.apply_delta(delta)


# ``latency_percentiles`` lives in :mod:`repro.observability.summary` now
# (PR 8) and is re-exported above, unchanged, for existing importers.
