"""Mixed read/update traces for driving the serving layer.

A trace is the service-shaped workload the paper's solvers never see in the
single-request benchmarks: a stream of *rounds*, each committing one update
batch and then serving a batch of recommendation requests drawn — with the
heavy repetition real request logs show — from a small pool of popular
requests.  ``benchmarks/bench_serving.py``, the ``repro serve`` CLI command
and ``examples/serving_trace.py`` all replay the same generator, so the
numbers they print describe the same workload.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.core import (
    AttributeSumCost,
    AttributeSumRating,
    RecommendationProblem,
    compute_top_k,
)
from repro.core.compatibility import QueryConstraint
from repro.core.model import ConstantBound
from repro.queries.ast import Comparison, ComparisonOp, RelationAtom, Var
from repro.queries.cq import ConjunctiveQuery
from repro.serving.server import ServeRequest
from repro.workloads.synthetic import item_selection_query, random_item_database

Delta = List[Tuple[str, str, Tuple]]


def _duplicate_category_violation() -> QueryConstraint:
    """"At most one item per category", as a CQ violation query over ``RQ``.

    A *query* constraint (not a predicate) on purpose: its probes exercise
    the full evaluator per package, which is the cost profile the serving
    layer's shared verdict cache exists to amortise.
    """
    iid1, iid2, category = Var("iid1"), Var("iid2"), Var("category")
    p1, q1, p2, q2 = Var("p1"), Var("q1"), Var("p2"), Var("q2")
    violation = ConjunctiveQuery(
        [],
        [
            RelationAtom("RQ", [iid1, category, p1, q1]),
            RelationAtom("RQ", [iid2, category, p2, q2]),
        ],
        [Comparison(ComparisonOp.NE, iid1, iid2)],
        name="duplicate_category",
    )
    return QueryConstraint(violation, answer_relation="RQ")


def serving_problem(num_items: int, seed: int = 0) -> RecommendationProblem:
    """A package problem sized for serving: random items, a joining ``Qc``."""
    database = random_item_database(num_items, seed=seed)
    return RecommendationProblem(
        database=database,
        query=item_selection_query(max_price=30),
        cost=AttributeSumCost("price"),
        val=AttributeSumRating("quality"),
        budget=45.0,
        k=2,
        compatibility=_duplicate_category_violation(),
        size_bound=ConstantBound(2),
        monotone_cost=True,
        antimonotone_compatibility=True,
        monotone_val=True,
        name=f"serving over {num_items} random items",
    )


@dataclass(frozen=True)
class ServingTrace:
    """A problem plus the rounds to replay against it.

    Each round is ``(delta, requests)``: the writer commits ``delta`` (empty
    in round 0, so the initial epoch is also served), then the batch of
    ``requests`` is served.  Replaying the rounds against two servers built
    over *fresh* :func:`build_trace` calls yields comparable answer
    sequences: the deltas are part of the trace, so both replicas walk the
    identical epoch history.
    """

    problem: RecommendationProblem
    rounds: Tuple[Tuple[Tuple[Tuple[str, str, Tuple], ...], Tuple[ServeRequest, ...]], ...]

    @property
    def num_requests(self) -> int:
        return sum(len(requests) for _, requests in self.rounds)


def build_trace(
    num_items: int,
    num_rounds: int,
    batch_size: int,
    seed: int = 0,
) -> ServingTrace:
    """A deterministic mixed read/update trace over a fresh problem.

    The request pool is small and skewed (popular requests repeat within a
    batch, as in a real request log); the update stream inserts fresh items
    and occasionally deletes one it inserted, so every round commits an
    effective delta and opens a new epoch.
    """
    rng = random.Random(seed)
    problem = serving_problem(num_items, seed=seed)

    # The pool of popular requests.  The ``check`` candidate is the *initial*
    # epoch's top-k selection: as the writer commits, its verdict may flip —
    # a request whose answer is epoch-dependent by construction.
    initial_top = compute_top_k(problem)
    pool: List[ServeRequest] = [ServeRequest.top_k()]
    weights: List[float] = [0.30]
    for bound, weight in ((20.0, 0.12), (28.0, 0.12), (34.0, 0.11)):
        pool.append(ServeRequest.exists(bound))
        weights.append(weight)
    pool.append(ServeRequest.count(26.0))
    weights.append(0.20)
    if initial_top.selection is not None:
        pool.append(
            ServeRequest.check(
                [package.sorted_items() for package in initial_top.selection]
            )
        )
        weights.append(0.15)

    categories = sorted({row[1] for row in problem.database.relation("items").rows()})
    inserted: List[Tuple] = []
    rounds = []
    next_iid = 10_000
    for round_index in range(num_rounds):
        delta: Delta = []
        if round_index > 0:
            for _ in range(rng.randint(1, 3)):
                row = (
                    next_iid,
                    rng.choice(categories),
                    rng.randrange(1, 30),
                    rng.randrange(1, 20),
                )
                next_iid += 1
                inserted.append(row)
                delta.append(("insert", "items", row))
            if inserted and rng.random() < 0.5:
                delta.append(("delete", "items", inserted.pop(rng.randrange(len(inserted)))))
        requests = tuple(rng.choices(pool, weights=weights, k=batch_size))
        rounds.append((tuple(delta), requests))
    return ServingTrace(problem=problem, rounds=tuple(rounds))


def overload_problem(num_items: int, seed: int = 0) -> RecommendationProblem:
    """:func:`serving_problem` with a size-3 package bound: a poison lattice.

    Raising the size bound from 2 to 3 makes the candidate lattice cubic in
    ``|Q(D)|``, so a ``count`` request — which must visit every node — runs
    for orders of magnitude longer than a witness search, while the witness
    searches themselves stay fast.  This is the cost asymmetry the
    resilience benchmark's adversarial trace is built on.
    """
    base = serving_problem(num_items, seed=seed)
    return RecommendationProblem(
        database=base.database,
        query=base.query,
        cost=base.cost,
        val=base.val,
        budget=base.budget,
        k=base.k,
        compatibility=base.compatibility,
        size_bound=ConstantBound(3),
        monotone_cost=True,
        antimonotone_compatibility=True,
        monotone_val=True,
        name=f"overload serving over {num_items} random items",
    )


def build_overload_trace(
    num_items: int,
    num_rounds: int,
    batch_size: int,
    seed: int = 0,
    poison_per_batch: int = 3,
) -> ServingTrace:
    """An adversarial trace: a few poison requests buried in cheap traffic.

    Each round opens with ``poison_per_batch`` *poison* requests — ``count``
    probes with round-unique (hence never-memoized) bounds that must sweep
    the whole size-3 lattice of :func:`overload_problem` — followed by cheap
    witness probes (``exists`` with low bounds) that repeat heavily, so an
    epoch's first computation is amortised by the answer memo.  Poison leads
    the batch on purpose: an unguarded server's workers are all captured
    before any cheap request runs, which is exactly the overload a deadline
    is for.  Deltas are part of the trace, so replicas replaying it walk the
    identical epoch history (faults injected at ``serving.worker`` never
    touch the commit path).
    """
    rng = random.Random(seed)
    problem = overload_problem(num_items, seed=seed)

    cheap_pool: List[ServeRequest] = [
        ServeRequest.exists(1.0),
        ServeRequest.exists(2.0),
        ServeRequest.exists(3.0),
        ServeRequest.exists(4.0),
    ]
    categories = sorted({row[1] for row in problem.database.relation("items").rows()})
    rounds = []
    next_iid = 50_000
    for round_index in range(num_rounds):
        delta: Delta = []
        if round_index > 0:
            row = (
                next_iid,
                rng.choice(categories),
                rng.randrange(1, 30),
                rng.randrange(1, 20),
            )
            next_iid += 1
            delta.append(("insert", "items", row))
        poison = tuple(
            # Distinct negative bounds: every valid package qualifies, the
            # full lattice is swept, and no two poison requests ever share a
            # memo entry.
            ServeRequest.count(-1.0 - round_index * poison_per_batch - slot)
            for slot in range(poison_per_batch)
        )
        cheap = tuple(
            rng.choices(cheap_pool, k=max(0, batch_size - poison_per_batch))
        )
        rounds.append((tuple(delta), poison + cheap))
    return ServingTrace(problem=problem, rounds=tuple(rounds))
