"""The snapshot-isolated serving layer (PR 6).

``repro.serving`` is the batch front end over the MVCC snapshot machinery of
:mod:`repro.relational.database`: N recommendation requests in, N package
answers out, while one writer keeps committing deltas.  See
:mod:`repro.serving.server` for the two server implementations (the MVCC
:class:`SnapshotServer` and the retained :class:`GlobalLockServer` baseline)
and :mod:`repro.serving.trace` for the mixed read/update traces that drive
them in the benchmark, the CLI and the example walkthrough.
"""

from repro.serving.server import (
    REQUEST_KINDS,
    GlobalLockServer,
    ServeRequest,
    ServeResult,
    SnapshotServer,
    execute_request,
    latency_percentiles,
)
from repro.serving.trace import ServingTrace, build_trace, serving_problem

__all__ = [
    "REQUEST_KINDS",
    "GlobalLockServer",
    "ServeRequest",
    "ServeResult",
    "ServingTrace",
    "SnapshotServer",
    "build_trace",
    "execute_request",
    "latency_percentiles",
    "serving_problem",
]
