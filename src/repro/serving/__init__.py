"""The snapshot-isolated serving layer (PR 6), hardened for failure (PR 7).

``repro.serving`` is the batch front end over the MVCC snapshot machinery of
:mod:`repro.relational.database`: N recommendation requests in, N package
answers out, while one writer keeps committing deltas.  See
:mod:`repro.serving.server` for the two server implementations (the MVCC
:class:`SnapshotServer` and the retained :class:`GlobalLockServer` baseline)
and :mod:`repro.serving.trace` for the mixed read/update traces that drive
them in the benchmark, the CLI and the example walkthrough.

PR 7 adds the resilience surface: failures are isolated per request (an
error :class:`ServeResult` carrying a typed
:class:`~repro.resilience.errors.ServeError`, never a batch abort), and a
:class:`ResilienceConfig` arms the snapshot server with request deadlines,
bounded-admission load shedding and retry-with-backoff.
:func:`build_overload_trace` generates the adversarial poison-request trace
``benchmarks/bench_resilience.py`` measures the guard on.
"""

from repro.serving.server import (
    REQUEST_KINDS,
    GlobalLockServer,
    ResilienceConfig,
    ServeRequest,
    ServeResult,
    SnapshotServer,
    execute_request,
    latency_percentiles,
)
from repro.serving.trace import (
    ServingTrace,
    build_overload_trace,
    build_trace,
    overload_problem,
    serving_problem,
)

__all__ = [
    "REQUEST_KINDS",
    "GlobalLockServer",
    "ResilienceConfig",
    "ServeRequest",
    "ServeResult",
    "ServingTrace",
    "SnapshotServer",
    "build_overload_trace",
    "build_trace",
    "execute_request",
    "latency_percentiles",
    "overload_problem",
    "serving_problem",
]
